package core

import (
	"math"
	"testing"

	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// equalResponses is exact float equality, field for field — the batch
// solve promises bit-identical responses, so no tolerance is allowed.
func equalResponses(a, b worker.Response) bool {
	return a.Effort == b.Effort &&
		a.Feedback == b.Feedback &&
		a.Compensation == b.Compensation &&
		a.Utility == b.Utility &&
		a.Interval == b.Interval &&
		a.Declined == b.Declined
}

// requireSameResult asserts the batched result matches the scalar one
// bit for bit: contract knots/comps, KOpt, response, bounds, and (when
// present) every per-k candidate's diagnostics.
func requireSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if got.KOpt != want.KOpt {
		t.Fatalf("KOpt = %d, want %d", got.KOpt, want.KOpt)
	}
	if !want.Contract.Equal(got.Contract) {
		t.Fatalf("contract differs:\n got %v\nwant %v", got.Contract, want.Contract)
	}
	if !equalResponses(want.Response, got.Response) {
		t.Fatalf("response differs:\n got %+v\nwant %+v", got.Response, want.Response)
	}
	if got.RequesterUtility != want.RequesterUtility {
		t.Fatalf("requester utility = %v, want %v", got.RequesterUtility, want.RequesterUtility)
	}
	if got.UpperBound != want.UpperBound || got.LowerBound != want.LowerBound {
		t.Fatalf("bounds = (%v, %v), want (%v, %v)",
			got.UpperBound, got.LowerBound, want.UpperBound, want.LowerBound)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("candidates = %d, want %d", len(got.Candidates), len(want.Candidates))
	}
	for i := range want.Candidates {
		wc, gc := want.Candidates[i], got.Candidates[i]
		if gc.K != wc.K || gc.Clamped != wc.Clamped || gc.ParticipationLift != wc.ParticipationLift {
			t.Fatalf("candidate %d: (k=%d clamped=%v lift=%v), want (k=%d clamped=%v lift=%v)",
				i, gc.K, gc.Clamped, gc.ParticipationLift, wc.K, wc.Clamped, wc.ParticipationLift)
		}
		if !wc.Contract.Equal(gc.Contract) {
			t.Fatalf("candidate %d contract differs:\n got %v\nwant %v", i, gc.Contract, wc.Contract)
		}
		if !equalResponses(wc.Response, gc.Response) {
			t.Fatalf("candidate %d response differs:\n got %+v\nwant %+v", i, gc.Response, wc.Response)
		}
		if gc.RequesterUtility != wc.RequesterUtility {
			t.Fatalf("candidate %d RU = %v, want %v", i, gc.RequesterUtility, wc.RequesterUtility)
		}
	}
}

// batchCases spans the behavioural corners of the solve: plain honest,
// malicious (ω > 0), a collusive community meta-worker, a reservation
// that forces the participation lift, an ω large enough to clamp slopes,
// and a negative requester weight (argmax ties and negative utilities).
func batchCases(t *testing.T) map[string]struct {
	agent *worker.Agent
	cfg   Config
} {
	t.Helper()
	psi := stdPsi(t)
	part, err := effort.NewPartition(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := worker.NewHonest("h", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	malicious, err := worker.NewMalicious("m", psi, 1, 0.5, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	community, err := worker.NewCommunity("c", psi, 1, 0.5, 3, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	reserved, err := worker.NewHonest("r", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	reserved.Reservation = 60 // above any candidate's voluntary utility: every k lifts
	clamped, err := worker.NewMalicious("cl", psi, 1, 5, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Part: part, Mu: 1, W: 1, WantCandidates: true}
	negW := base
	negW.W = -0.5
	return map[string]struct {
		agent *worker.Agent
		cfg   Config
	}{
		"honest":      {honest, base},
		"malicious":   {malicious, base},
		"community":   {community, base},
		"reservation": {reserved, base},
		"clamped":     {clamped, base},
		"negative-w":  {honest, negW},
	}
}

func TestDesignIntoMatchesDesign(t *testing.T) {
	scratch := &Scratch{} // shared across subtests: reuse must not leak state
	for name, tc := range batchCases(t) {
		t.Run(name, func(t *testing.T) {
			want, err := Design(tc.agent, tc.cfg)
			if err != nil {
				t.Fatalf("scalar Design: %v", err)
			}
			got, err := DesignInto(tc.agent, tc.cfg, scratch)
			if err != nil {
				t.Fatalf("DesignInto: %v", err)
			}
			requireSameResult(t, want, got)

			// Behavioural coverage guards: the corner each case exists for
			// must actually occur, or the differential proves nothing.
			switch name {
			case "reservation":
				if got.Candidates[got.KOpt-1].ParticipationLift <= 0 {
					t.Error("reservation case produced no participation lift")
				}
			case "clamped":
				anyClamped := false
				for _, c := range got.Candidates {
					anyClamped = anyClamped || c.Clamped
				}
				if !anyClamped {
					t.Error("clamped case produced no clamped candidate")
				}
			}

			// Winner-only mode drops the diagnostics but nothing else.
			lean := tc.cfg
			lean.WantCandidates = false
			leanGot, err := DesignInto(tc.agent, lean, scratch)
			if err != nil {
				t.Fatalf("DesignInto (lean): %v", err)
			}
			if leanGot.Candidates != nil {
				t.Error("lean result carries candidates")
			}
			leanGot.Candidates = want.Candidates // borrow for the comparison
			requireSameResult(t, want, leanGot)
		})
	}
	if scratch.Uses() == 0 {
		t.Error("scratch was never used")
	}
}

// TestDesignIntoNilScratch pins that a nil scratch is accepted (a
// temporary is used) and changes nothing about the result.
func TestDesignIntoNilScratch(t *testing.T) {
	a := honestAgent(t)
	cfg := stdConfig(t, 10)
	want, err := Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DesignInto(a, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got)
}

// TestDesignIntoScratchAcrossPartitions drives one scratch through
// alternating partition sizes and ψ curves, pinning that the knot cache
// and buffer reuse never leak state between heterogeneous solves.
func TestDesignIntoScratchAcrossPartitions(t *testing.T) {
	scratch := &Scratch{}
	psiA := stdPsi(t)
	psiB, err := effort.NewQuadratic(-0.01, 1.5, 0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{20, 4, 12, 4, 20} {
		for _, psi := range []effort.Quadratic{psiA, psiB} {
			part, err := effort.NewPartition(m, 40.0/float64(m))
			if err != nil {
				t.Fatal(err)
			}
			a, err := worker.NewMalicious("x", psi, 1, 0.3, part.YMax())
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Part: part, Mu: 1, W: 1, WantCandidates: true}
			want, err := Design(a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DesignInto(a, cfg, scratch)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, want, got)
		}
	}
}

// TestDesignIntoErrorsMatchDesign pins that invalid inputs fail through
// DesignInto with exactly the scalar path's error text.
func TestDesignIntoErrorsMatchDesign(t *testing.T) {
	a := honestAgent(t)
	bad := stdConfig(t, 10)
	bad.Mu = -1
	_, wantErr := Design(a, bad)
	_, gotErr := DesignInto(a, bad, nil)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("want both errors, got %v / %v", wantErr, gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error mismatch:\n got %q\nwant %q", gotErr, wantErr)
	}
}

func TestDesignBatch(t *testing.T) {
	cases := batchCases(t)
	items := make([]BatchItem, 0, len(cases))
	for _, name := range []string{"honest", "malicious", "community", "reservation", "clamped", "negative-w"} {
		tc := cases[name]
		items = append(items, BatchItem{Agent: tc.agent, Config: tc.cfg})
	}
	out := make([]BatchOutcome, len(items))
	if err := DesignBatch(items, out, &Scratch{}); err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		if out[i].Err != nil {
			t.Fatalf("item %d: %v", i, out[i].Err)
		}
		want, err := Design(item.Agent, item.Config)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, want, out[i].Result)
	}

	if err := DesignBatch(items, out[:1], nil); err == nil {
		t.Error("short outcome buffer accepted")
	}
}

// FuzzDesignIntoMatchesDesign fuzzes the full parameter space — cost
// curve (r2, r1, r0), worker (β, ω, reservation), requester (w, μ), and
// partition (m, δ) — asserting the batched and scalar solves agree on
// the (result, error) pair exactly.
func FuzzDesignIntoMatchesDesign(f *testing.F) {
	f.Add(-0.02, 2.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 10, 4.0)
	f.Add(-0.02, 2.0, 1.0, 1.0, 0.5, 0.0, 0.8, 1.2, 8, 5.0)
	f.Add(-0.01, 1.5, 0.5, 2.0, 5.0, 0.0, 1.0, 0.5, 6, 5.0)   // heavy clamping
	f.Add(-0.02, 2.0, 1.0, 1.0, 0.0, 80.0, 1.0, 1.0, 12, 3.0) // forced lift
	f.Add(-0.02, 2.0, 1.0, 1.0, 0.2, 0.0, -0.5, 1.0, 5, 8.0)  // negative w
	f.Fuzz(func(t *testing.T, r2, r1, r0, beta, omega, reservation, w, mu float64, m int, delta float64) {
		if m < 1 || m > 64 || !(delta > 0) || delta > 100 {
			return
		}
		yMax := float64(m) * delta
		psi, err := effort.NewQuadratic(r2, r1, r0, yMax)
		if err != nil {
			return
		}
		part, err := effort.NewPartition(m, delta)
		if err != nil {
			return
		}
		a, err := worker.NewMalicious("fz", psi, beta, omega, yMax)
		if err != nil {
			return
		}
		if reservation >= 0 && !math.IsInf(reservation, 0) {
			a.Reservation = reservation
		}
		cfg := Config{Part: part, Mu: mu, W: w, WantCandidates: true}

		want, wantErr := Design(a, cfg)
		got, gotErr := DesignInto(a, cfg, &Scratch{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error disagreement: scalar %v, batch %v", wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error mismatch:\n got %q\nwant %q", gotErr, wantErr)
			}
			return
		}
		requireSameResult(t, want, got)
	})
}
