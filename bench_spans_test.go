package dyncontract

import (
	"context"
	"testing"

	"dyncontract/internal/engine"
	"dyncontract/internal/platform"
	"dyncontract/internal/spans"
)

// BenchmarkTraceOverhead measures span tracing against the same warmest
// round BenchmarkTelemetryOverhead uses — 1000 agents, dedup-warm, pure
// cache hits — where any fixed per-round cost is proportionally largest.
// Three arms:
//
//   - disabled: no tracer anywhere — the production default. Bound by the
//     warm-round regression gate in scripts/bench.sh: tracing that is off
//     may not cost a measurable share of the round.
//   - sampled-out: a live tracer head-samples every round out, so each
//     iteration pays ID generation plus the sampling decision and the
//     engine sees a bare context (one nil check per stage, no heap).
//   - sampled-in: every iteration records a full trace — root, round, five
//     stages — modeling one traced request per round. This arm is allowed
//     to cost more; it exists to keep the price of a recorded trace
//     visible.
func BenchmarkTraceOverhead(b *testing.B) {
	pop := benchArchetypePopulation(b, 1000)

	// perRound returns the context for one iteration and a func to close
	// the iteration's trace (no-op when untraced).
	runWarm := func(b *testing.B, perRound func() (context.Context, func())) {
		b.Helper()
		cache := engine.NewCache()
		pol := &platform.DynamicPolicy{}
		cfg := engine.Config{Policy: pol, Rounds: 1, Cache: cache}
		if _, err := engine.RunLedger(context.Background(), pop, cfg); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, end := perRound()
			if _, err := engine.RunLedger(ctx, pop, cfg); err != nil {
				b.Fatal(err)
			}
			end()
		}
	}

	noop := func() {}
	bare := func() (context.Context, func()) {
		return context.Background(), noop
	}

	b.Run("disabled", func(b *testing.B) {
		runWarm(b, bare)
	})
	b.Run("sampled-out", func(b *testing.B) {
		tracer := spans.New(spans.Config{Sample: 0, Seed: 1, Recorder: spans.NewRecorder(4, 2)})
		runWarm(b, func() (context.Context, func()) {
			// Sample 0 never samples: StartRoot returns nil, ContextWith
			// passes the context through, the engine sees no tracing.
			sp := tracer.StartRoot("bench.round", tracer.NewTraceID())
			if sp == nil {
				return context.Background(), noop
			}
			b.Fatal("sample=0 produced a span")
			return nil, nil
		})
	})
	b.Run("sampled-in", func(b *testing.B) {
		rec := spans.NewRecorder(4, 2)
		tracer := spans.New(spans.Config{Sample: 1, Seed: 1, Recorder: rec})
		runWarm(b, func() (context.Context, func()) {
			sp := tracer.Root("bench.round")
			return spans.ContextWith(context.Background(), sp), sp.End
		})
		b.StopTimer()
		if rec.Completed() == 0 {
			b.Fatal("traced arm recorded no traces")
		}
	})
}
