// Package obs is the shared observability glue for this repository's
// command-line binaries: one flag set (-metrics, -metrics-listen,
// -cpuprofile, -memprofile), one Session that owns the resulting sinks —
// a JSONL snapshot file, an HTTP endpoint serving /metrics in Prometheus
// text format plus net/http/pprof, and CPU/heap profiles — and one
// cache-stats printer, so cmd/platformsim and cmd/experiments stay
// wiring-identical instead of growing two copies.
package obs

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
)

// Flags is the standard observability flag block. Register it on a
// FlagSet, parse, then Start a Session.
type Flags struct {
	// MetricsPath, when non-empty, appends one JSONL snapshot line per
	// Flush (the CLIs flush per round or per experiment) to this file.
	MetricsPath string
	// MetricsListen, when non-empty, serves /metrics (Prometheus text
	// format) and /debug/pprof/ on this TCP address for live scraping
	// and profiling; ":0" picks a free port (see Session.Addr).
	MetricsListen string
	// CPUProfile / MemProfile, when non-empty, write pprof profiles on
	// Session.Close.
	CPUProfile string
	MemProfile string
}

// Register installs the flag block on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsPath, "metrics", "", "append one JSONL metrics snapshot per round/flush to this file")
	fs.StringVar(&f.MetricsListen, "metrics-listen", "", "serve /metrics (Prometheus text) and /debug/pprof/ on this address")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
}

// Enabled reports whether any observability flag was set.
func (f *Flags) Enabled() bool {
	return f.MetricsPath != "" || f.MetricsListen != "" || f.CPUProfile != "" || f.MemProfile != ""
}

// Handler returns the HTTP handler a Session serves: GET /metrics renders
// reg's current snapshot in Prometheus text exposition format, and the
// standard net/http/pprof handlers are mounted under /debug/pprof/ so a
// long simulation can be profiled live (e.g. `go tool pprof
// http://addr/debug/pprof/profile`).
func Handler(reg *telemetry.Registry) http.Handler {
	return HandlerWith(reg, nil)
}

// Session owns the sinks a Flags block requested. All methods tolerate a
// nil receiver and an all-flags-off session, so call sites need no
// "observability enabled?" branching. Close it exactly once.
type Session struct {
	reg       *telemetry.Registry
	sink      *telemetry.JSONLSink
	sinkFile  *os.File
	srv       *http.Server
	lis       net.Listener
	srvClosed chan error
	cpuFile   *os.File
	memPath   string
}

// Start opens every requested sink against reg and returns the live
// session. With no flags set it returns an inert (still closeable)
// session. On error, anything already opened is released.
func (f *Flags) Start(reg *telemetry.Registry) (*Session, error) {
	s := &Session{reg: reg, memPath: f.MemProfile}
	fail := func(err error) (*Session, error) {
		_ = s.Close()
		return nil, err
	}
	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("obs: create cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return fail(fmt.Errorf("obs: start cpu profile: %w", err))
		}
		s.cpuFile = file
	}
	if f.MetricsPath != "" {
		file, err := os.Create(f.MetricsPath)
		if err != nil {
			return fail(fmt.Errorf("obs: create metrics file: %w", err))
		}
		s.sinkFile = file
		s.sink = telemetry.NewJSONLSink(file)
	}
	if f.MetricsListen != "" {
		lis, err := net.Listen("tcp", f.MetricsListen)
		if err != nil {
			return fail(fmt.Errorf("obs: listen %s: %w", f.MetricsListen, err))
		}
		s.lis = lis
		s.srv = &http.Server{Handler: Handler(reg)}
		s.srvClosed = make(chan error, 1)
		go func() { s.srvClosed <- s.srv.Serve(lis) }()
	}
	return s, nil
}

// Addr returns the metrics server's bound address ("" when not
// listening) — with "-metrics-listen :0" this is where the free port
// landed.
func (s *Session) Addr() string {
	if s == nil || s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Flush appends one JSONL snapshot line (no-op without -metrics).
func (s *Session) Flush() error {
	if s == nil || s.sink == nil {
		return nil
	}
	return s.sink.Write(s.reg.Snapshot())
}

// RoundObserver returns an engine observer that flushes one JSONL line at
// the end of every round — the "one line per round" mode of the sink. A
// flush failure aborts the run with the write error (disk-full should not
// silently truncate a metrics trail).
func (s *Session) RoundObserver() engine.Observer {
	return engine.Hooks{RoundEnd: func(engine.Round) error { return s.Flush() }}
}

// Close releases every sink: stops the CPU profile, writes the heap
// profile, closes the JSONL file, and shuts down the metrics server. It
// returns the first error encountered but always attempts every release.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var errs []error
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("obs: close cpu profile: %w", err))
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		if err := writeHeapProfile(s.memPath); err != nil {
			errs = append(errs, err)
		}
		s.memPath = ""
	}
	if s.sinkFile != nil {
		if err := s.sinkFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("obs: close metrics file: %w", err))
		}
		s.sinkFile, s.sink = nil, nil
	}
	if s.srv != nil {
		if err := s.srv.Close(); err != nil {
			errs = append(errs, fmt.Errorf("obs: close metrics server: %w", err))
		}
		select {
		case err := <-s.srvClosed:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				errs = append(errs, fmt.Errorf("obs: metrics server: %w", err))
			}
		case <-time.After(5 * time.Second):
			errs = append(errs, errors.New("obs: metrics server did not shut down"))
		}
		s.srv, s.lis = nil, nil
	}
	return errors.Join(errs...)
}

// writeHeapProfile snapshots the heap after a GC, the shape `go tool
// pprof` expects for -memprofile flags.
func writeHeapProfile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create mem profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("obs: write mem profile: %w", err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("obs: close mem profile: %w", err)
	}
	return nil
}

// FprintCacheStats renders design-cache counters the way both CLIs print
// them — the one shared copy of the `-cachestats` output format.
func FprintCacheStats(w io.Writer, s engine.CacheStats) {
	fmt.Fprintf(w, "  design cache: %d hits, %d misses (%d distinct designs held)\n",
		s.Hits, s.Misses, s.Entries)
}

// FprintRespondStats renders respond-memo counters the way both CLIs
// print them — the one shared copy of the `-respondstats` output format.
func FprintRespondStats(w io.Writer, s engine.RespondStats) {
	fmt.Fprintf(w, "  respond memo: %d hits, %d misses (%d responses held)\n",
		s.Hits, s.Misses, s.Entries)
}

// CacheStatsFrom reconstructs a CacheStats view from a registry snapshot
// (the MetricCache* names), for call sites that observe a run through its
// registry rather than holding the *engine.Cache.
func CacheStatsFrom(s telemetry.Snapshot) engine.CacheStats {
	return engine.CacheStats{
		Hits:    s.Counters[engine.MetricCacheHits],
		Misses:  s.Counters[engine.MetricCacheMisses],
		Entries: int(s.Gauges[engine.MetricCacheEntries]),
	}
}

// DeltaCacheStats returns cur−prev on the counters (Entries stays
// absolute): the per-run view when several simulations share one
// registry, as cmd/experiments does across experiments.
func DeltaCacheStats(prev, cur engine.CacheStats) engine.CacheStats {
	return engine.CacheStats{
		Hits:    cur.Hits - prev.Hits,
		Misses:  cur.Misses - prev.Misses,
		Entries: cur.Entries,
	}
}

// RespondStatsFrom reconstructs a RespondStats view from a registry
// snapshot (the MetricRespond* names), mirroring CacheStatsFrom.
func RespondStatsFrom(s telemetry.Snapshot) engine.RespondStats {
	return engine.RespondStats{
		Hits:    s.Counters[engine.MetricRespondHits],
		Misses:  s.Counters[engine.MetricRespondMisses],
		Entries: int(s.Gauges[engine.MetricRespondEntries]),
	}
}

// DeltaRespondStats returns cur−prev on the counters (Entries stays
// absolute), mirroring DeltaCacheStats for runs sharing one memo or
// registry.
func DeltaRespondStats(prev, cur engine.RespondStats) engine.RespondStats {
	return engine.RespondStats{
		Hits:    cur.Hits - prev.Hits,
		Misses:  cur.Misses - prev.Misses,
		Entries: cur.Entries,
	}
}

// ShardStats summarizes the sharded pipeline's per-shard stage activity
// as read from a registry snapshot: the current shard count and, per
// stage, how many per-shard executions ran and how long they took in
// total. Design runs once per shard per rebuilt round; RespondRuns below
// DesignRuns×rounds is warm rounds skipping the respond stage per shard.
type ShardStats struct {
	Shards                        int
	DesignRuns, RespondRuns       uint64
	DesignSeconds, RespondSeconds float64
}

// ShardStatsFrom reads the shard gauge and per-shard stage histograms
// (the MetricShard* names) out of a registry snapshot, mirroring
// CacheStatsFrom.
func ShardStatsFrom(s telemetry.Snapshot) ShardStats {
	design := s.Histograms[engine.MetricShardDesignSeconds]
	respond := s.Histograms[engine.MetricShardRespondSeconds]
	return ShardStats{
		Shards:         int(s.Gauges[engine.MetricShards]),
		DesignRuns:     design.Count,
		RespondRuns:    respond.Count,
		DesignSeconds:  design.Sum,
		RespondSeconds: respond.Sum,
	}
}

// DeltaShardStats returns cur−prev on the run counts and timings (Shards
// stays absolute): the per-run view when several simulations share one
// registry, mirroring DeltaCacheStats.
func DeltaShardStats(prev, cur ShardStats) ShardStats {
	return ShardStats{
		Shards:         cur.Shards,
		DesignRuns:     cur.DesignRuns - prev.DesignRuns,
		RespondRuns:    cur.RespondRuns - prev.RespondRuns,
		DesignSeconds:  cur.DesignSeconds - prev.DesignSeconds,
		RespondSeconds: cur.RespondSeconds - prev.RespondSeconds,
	}
}

// DriftStats summarizes the engine's sparse-drift activity as read from a
// registry snapshot: how many agents were named by consumed Touch scopes,
// how the shard partition split between rebuilt (owning a touched agent)
// and skipped (left warm) shards, and the total time spent in sparse view
// refreshes. Bump and legacy Drift-hook rounds take the full-rebuild path
// and count nothing here.
type DriftStats struct {
	TouchedAgents  uint64
	JoinedAgents   uint64
	LeftAgents     uint64
	Compactions    uint64
	ShardsRebuilt  uint64
	ShardsSkipped  uint64
	RebuildRuns    uint64
	RebuildSeconds float64
}

// DriftStatsFrom reads the drift counters and the sparse-refresh timing
// histogram (the MetricDrift* names) out of a registry snapshot,
// mirroring ShardStatsFrom.
func DriftStatsFrom(s telemetry.Snapshot) DriftStats {
	rebuild := s.Histograms[engine.MetricDriftRebuildSeconds]
	return DriftStats{
		TouchedAgents:  s.Counters[engine.MetricDriftTouchedAgents],
		JoinedAgents:   s.Counters[engine.MetricDriftJoins],
		LeftAgents:     s.Counters[engine.MetricDriftLeaves],
		Compactions:    s.Counters[engine.MetricDriftCompactions],
		ShardsRebuilt:  s.Counters[engine.MetricDriftShardsRebuilt],
		ShardsSkipped:  s.Counters[engine.MetricDriftShardsSkipped],
		RebuildRuns:    rebuild.Count,
		RebuildSeconds: rebuild.Sum,
	}
}

// DeltaDriftStats returns cur−prev on every field — all of them
// cumulative — for runs sharing one registry, mirroring DeltaShardStats.
func DeltaDriftStats(prev, cur DriftStats) DriftStats {
	return DriftStats{
		TouchedAgents:  cur.TouchedAgents - prev.TouchedAgents,
		JoinedAgents:   cur.JoinedAgents - prev.JoinedAgents,
		LeftAgents:     cur.LeftAgents - prev.LeftAgents,
		Compactions:    cur.Compactions - prev.Compactions,
		ShardsRebuilt:  cur.ShardsRebuilt - prev.ShardsRebuilt,
		ShardsSkipped:  cur.ShardsSkipped - prev.ShardsSkipped,
		RebuildRuns:    cur.RebuildRuns - prev.RebuildRuns,
		RebuildSeconds: cur.RebuildSeconds - prev.RebuildSeconds,
	}
}

// HTTPRouteStats summarizes one instrumented HTTP route (the
// telemetry.InstrumentHandler metric set) as read from a registry
// snapshot: request and status-class counts, the backpressure rejections,
// and latency aggregates from the route's histogram.
type HTTPRouteStats struct {
	Route                   string
	Requests, Rejected      uint64
	Status2xx, Status3xx    uint64
	Status4xx, Status5xx    uint64
	MeanSeconds, P50Seconds float64
	P95Seconds, P99Seconds  float64
}

// HTTPStatsFrom extracts every instrumented route from a registry
// snapshot, sorted by route name — the serving-layer sibling of
// CacheStatsFrom/ShardStatsFrom, used by contractd's exit summary.
func HTTPStatsFrom(s telemetry.Snapshot) []HTTPRouteStats {
	var out []HTTPRouteStats
	for name, hist := range s.Histograms {
		if !strings.HasPrefix(name, telemetry.HTTPMetricPrefix) || !strings.HasSuffix(name, telemetry.HTTPSuffixSeconds) {
			continue
		}
		route := strings.TrimSuffix(strings.TrimPrefix(name, telemetry.HTTPMetricPrefix), telemetry.HTTPSuffixSeconds)
		base := telemetry.HTTPMetricPrefix + route
		out = append(out, HTTPRouteStats{
			Route:       route,
			Requests:    s.Counters[base+telemetry.HTTPSuffixRequests],
			Rejected:    s.Counters[base+telemetry.HTTPSuffixRejected],
			Status2xx:   s.Counters[base+telemetry.HTTPSuffix2xx],
			Status3xx:   s.Counters[base+telemetry.HTTPSuffix3xx],
			Status4xx:   s.Counters[base+telemetry.HTTPSuffix4xx],
			Status5xx:   s.Counters[base+telemetry.HTTPSuffix5xx],
			MeanSeconds: hist.Mean(),
			P50Seconds:  hist.Quantile(0.50),
			P95Seconds:  hist.Quantile(0.95),
			P99Seconds:  hist.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// FprintHTTPStats renders per-route serving stats one line per route —
// the shared format for contractd's drain summary and tests.
func FprintHTTPStats(w io.Writer, stats []HTTPRouteStats) {
	if len(stats) == 0 {
		fmt.Fprintf(w, "  http: no instrumented routes\n")
		return
	}
	for _, s := range stats {
		fmt.Fprintf(w, "  http %-16s %8d reqs (%d rejected, %d 5xx)  mean %8.4fs  p50 %8.4fs  p95 %8.4fs  p99 %8.4fs\n",
			s.Route, s.Requests, s.Rejected, s.Status5xx, s.MeanSeconds, s.P50Seconds, s.P95Seconds, s.P99Seconds)
	}
}

// FprintShardStats renders the sharded pipeline's per-shard stage metrics
// — the `-shardstats` output format. Stats with a zero shard count
// (sequential run, or telemetry disabled) print a single explanatory
// line.
func FprintShardStats(w io.Writer, s ShardStats) {
	if s.Shards == 0 {
		fmt.Fprintf(w, "  shards: sequential pipeline (no shard metrics)\n")
		return
	}
	mean := func(sum float64, n uint64) float64 {
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	fmt.Fprintf(w, "  shards: %d\n", s.Shards)
	fmt.Fprintf(w, "  shard design:  %6d runs, mean %.6fs\n", s.DesignRuns, mean(s.DesignSeconds, s.DesignRuns))
	fmt.Fprintf(w, "  shard respond: %6d runs, mean %.6fs\n", s.RespondRuns, mean(s.RespondSeconds, s.RespondRuns))
}

// FprintDriftStats renders the engine's sparse-drift counters — the
// `-driftstats` output format. Stats with no touched agents (no Touch
// scope ever consumed: full-rebuild drifts only, or telemetry disabled)
// print a single explanatory line.
func FprintDriftStats(w io.Writer, s DriftStats) {
	if s.TouchedAgents == 0 && s.JoinedAgents == 0 && s.LeftAgents == 0 {
		fmt.Fprintf(w, "  drift: no scoped drift (Touch/TouchJoin/TouchLeave) observed\n")
		return
	}
	fmt.Fprintf(w, "  drift touched: %d agents across %d sparse refreshes\n", s.TouchedAgents, s.RebuildRuns)
	if s.JoinedAgents > 0 || s.LeftAgents > 0 {
		fmt.Fprintf(w, "  drift churn:   %d joined, %d left, %d compactions\n", s.JoinedAgents, s.LeftAgents, s.Compactions)
	}
	fmt.Fprintf(w, "  drift shards:  %d rebuilt, %d skipped\n", s.ShardsRebuilt, s.ShardsSkipped)
	mean := 0.0
	if s.RebuildRuns > 0 {
		mean = s.RebuildSeconds / float64(s.RebuildRuns)
	}
	fmt.Fprintf(w, "  drift refresh: %.6fs total, mean %.6fs\n", s.RebuildSeconds, mean)
}
