package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dyncontract/internal/trace"
)

func TestRunJSONL(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "tr")
	var buf bytes.Buffer
	if err := run([]string{"-scale", "small", "-seed", "5", "-out", prefix}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(prefix + ".jsonl")
	if err != nil {
		t.Fatalf("open output: %v", err)
	}
	defer f.Close()
	tr, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatalf("written trace unreadable: %v", err)
	}
	if len(tr.Reviews) == 0 || len(tr.Workers) == 0 {
		t.Error("empty trace written")
	}
}

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "tr")
	var buf bytes.Buffer
	if err := run([]string{"-format", "csv", "-out", prefix}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	rf, err := os.Open(prefix + "_reviews.csv")
	if err != nil {
		t.Fatalf("reviews file: %v", err)
	}
	defer rf.Close()
	reviews, err := trace.ReadReviewsCSV(rf)
	if err != nil {
		t.Fatalf("reviews unreadable: %v", err)
	}
	wf, err := os.Open(prefix + "_workers.csv")
	if err != nil {
		t.Fatalf("workers file: %v", err)
	}
	defer wf.Close()
	workers, err := trace.ReadWorkersCSV(wf)
	if err != nil {
		t.Fatalf("workers unreadable: %v", err)
	}
	if len(reviews) == 0 || len(workers) == 0 {
		t.Error("empty CSV output")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	dir := t.TempDir()
	read := func(prefix string) []byte {
		var buf bytes.Buffer
		if err := run([]string{"-seed", "9", "-out", prefix}, &buf); err != nil {
			t.Fatalf("run: %v", err)
		}
		data, err := os.ReadFile(prefix + ".jsonl")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := read(filepath.Join(dir, "a"))
	b := read(filepath.Join(dir, "b"))
	if !bytes.Equal(a, b) {
		t.Error("same seed wrote different traces")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-format", "xml"}, &buf); err == nil {
		t.Error("bad format accepted")
	}
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "no", "such", "dir", "x")}, &buf); err == nil {
		t.Error("unwritable path accepted")
	}
}
