// Package classify extends the contract-design model from review tasks to
// crowdsourced binary classification — the generalization the paper names
// as future work (§VII: "extend our model from review tasks to a more
// general case, which can be applied to different crowdsourcing
// applications, like classification").
//
// The mapping onto the §II model:
//
//   - a task is a batch of items to label, seeded with gold questions of
//     known truth (the "programmatic gold" technique of [17]);
//   - a worker's observable feedback q is the number of gold questions
//     answered correctly, whose expectation G·p(y) is concave and
//     increasing in effort because the worker's accuracy p(y) is — so the
//     feedback function ψ is again a concave quadratic and the §IV-C
//     contract machinery applies unchanged;
//   - malicious workers bias their labels toward a target class; their
//     damage is bounded by the aggregation step, which weights votes by
//     demonstrated gold accuracy.
//
// The package provides the accuracy model, the ψ conversion, a weighted
// majority-vote aggregator, and a batch simulator that runs contracts,
// labeling, and aggregation end to end.
package classify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// ErrBadModel is returned for invalid classification models.
var ErrBadModel = errors.New("classify: invalid model")

// AccuracyCurve maps a worker's effort to labeling accuracy:
//
//	p(y) = Base + Gain·y + Curv·y², clamped to [0.5, PMax]
//
// with Curv ≤ 0 (diminishing returns) and Gain > 0. Base is the
// zero-effort accuracy (guessing = 0.5).
type AccuracyCurve struct {
	// Base is p(0), at least 0.5 (random guessing on binary labels).
	Base float64
	// Gain is the linear accuracy gain per unit effort.
	Gain float64
	// Curv is the (non-positive) curvature.
	Curv float64
	// PMax caps accuracy strictly below 1 (nobody is perfect).
	PMax float64
}

// DefaultCurve returns a curve reaching ~0.93 accuracy at effort 10.
func DefaultCurve() AccuracyCurve {
	return AccuracyCurve{Base: 0.55, Gain: 0.06, Curv: -0.0022, PMax: 0.97}
}

// Validate checks the curve over the effort range [0, yMax].
func (c AccuracyCurve) Validate(yMax float64) error {
	if c.Base < 0.5 || c.Base >= 1 {
		return fmt.Errorf("base=%v outside [0.5, 1): %w", c.Base, ErrBadModel)
	}
	if c.Gain <= 0 {
		return fmt.Errorf("gain=%v must be positive: %w", c.Gain, ErrBadModel)
	}
	if c.Curv > 0 {
		return fmt.Errorf("curv=%v must be non-positive: %w", c.Curv, ErrBadModel)
	}
	if c.PMax <= c.Base || c.PMax >= 1 {
		return fmt.Errorf("pmax=%v outside (base, 1): %w", c.PMax, ErrBadModel)
	}
	if c.Curv < 0 && yMax > 0 {
		// Accuracy must still be increasing at yMax.
		if c.Gain+2*c.Curv*yMax <= 0 {
			return fmt.Errorf("accuracy not increasing at y=%v: %w", yMax, ErrBadModel)
		}
	}
	return nil
}

// Eval returns the clamped accuracy at effort y. Effort beyond the
// curve's apex is treated as the apex: extra work plateaus rather than
// degrades accuracy.
func (c AccuracyCurve) Eval(y float64) float64 {
	if c.Curv < 0 {
		if apex := -c.Gain / (2 * c.Curv); y > apex {
			y = apex
		}
	}
	p := c.Base + c.Gain*y + c.Curv*y*y
	if p < 0.5 {
		return 0.5
	}
	if p > c.PMax {
		return c.PMax
	}
	return p
}

// FeedbackPsi converts the curve into the contract framework's effort
// function: ψ(y) = G·(Base + Gain·y + Curv·y²), the expected number of
// correct answers over G gold questions. Curv = 0 curves get a tiny
// negative curvature so the quadratic stays strictly concave as §IV-C
// requires.
func (c AccuracyCurve) FeedbackPsi(gold int, yMax float64) (effort.Quadratic, error) {
	if gold <= 0 {
		return effort.Quadratic{}, fmt.Errorf("gold=%d must be positive: %w", gold, ErrBadModel)
	}
	if err := c.Validate(yMax); err != nil {
		return effort.Quadratic{}, err
	}
	g := float64(gold)
	curv := c.Curv
	if curv == 0 {
		curv = -c.Gain / (1e6 * math.Max(yMax, 1))
	}
	return effort.NewQuadratic(g*curv, g*c.Gain, g*c.Base, yMax)
}

// Labeler is one worker in a classification task.
type Labeler struct {
	// ID identifies the labeler.
	ID string
	// Class is the behavioural class.
	Class worker.Class
	// Curve is the effort→accuracy model.
	Curve AccuracyCurve
	// Beta is the effort-cost weight.
	Beta float64
	// Omega is the influence weight for malicious labelers.
	Omega float64
	// TargetBias is the probability a malicious labeler overrides its
	// answer with `true` (the promoted class) on non-gold items; 0 for
	// honest labelers.
	TargetBias float64
}

// Validate checks the labeler over the effort range.
func (l Labeler) Validate(yMax float64) error {
	if l.ID == "" {
		return fmt.Errorf("empty labeler ID: %w", ErrBadModel)
	}
	if !l.Class.Valid() {
		return fmt.Errorf("labeler %s: bad class: %w", l.ID, ErrBadModel)
	}
	if err := l.Curve.Validate(yMax); err != nil {
		return fmt.Errorf("labeler %s: %w", l.ID, err)
	}
	if l.Beta <= 0 {
		return fmt.Errorf("labeler %s: beta=%v: %w", l.ID, l.Beta, ErrBadModel)
	}
	if l.TargetBias < 0 || l.TargetBias > 1 {
		return fmt.Errorf("labeler %s: bias=%v outside [0,1]: %w", l.ID, l.TargetBias, ErrBadModel)
	}
	if l.Class == worker.Honest && (l.TargetBias != 0 || l.Omega != 0) {
		return fmt.Errorf("labeler %s: honest with bias/omega: %w", l.ID, ErrBadModel)
	}
	return nil
}

// Task is a batch classification task.
type Task struct {
	// Truth holds the ground-truth labels, one per item.
	Truth []bool
	// Gold is the number of seeded gold questions used to measure
	// feedback (the first Gold items are gold; workers cannot tell).
	Gold int
	// ItemValue is the requester's value per correctly aggregated item.
	ItemValue float64
	// Mu is the compensation weight in the requester's utility.
	Mu float64
}

// Validate checks the task.
func (t Task) Validate() error {
	if len(t.Truth) == 0 {
		return fmt.Errorf("no items: %w", ErrBadModel)
	}
	if t.Gold <= 0 || t.Gold > len(t.Truth) {
		return fmt.Errorf("gold=%d outside [1, %d]: %w", t.Gold, len(t.Truth), ErrBadModel)
	}
	if t.ItemValue <= 0 || t.Mu <= 0 {
		return fmt.Errorf("itemValue=%v, mu=%v must be positive: %w", t.ItemValue, t.Mu, ErrBadModel)
	}
	return nil
}

// WorkerOutcome is one labeler's batch result.
type WorkerOutcome struct {
	// ID identifies the labeler.
	ID string
	// Effort is the chosen (best-response) effort.
	Effort float64
	// Accuracy is the realized latent accuracy p(Effort).
	Accuracy float64
	// GoldCorrect is the measured feedback (correct gold answers).
	GoldCorrect int
	// Compensation is the contract payment for the batch.
	Compensation float64
}

// Result is the outcome of running a batch.
type Result struct {
	// PerWorker holds per-labeler outcomes, sorted by ID.
	PerWorker []WorkerOutcome
	// Aggregate holds the majority-vote labels, one per item.
	Aggregate []bool
	// AggregateAccuracy is the fraction of items labelled correctly
	// after aggregation.
	AggregateAccuracy float64
	// TotalPay is the summed compensation.
	TotalPay float64
	// RequesterUtility is ItemValue·(#correct) − Mu·TotalPay.
	RequesterUtility float64
}

// DesignContracts designs one contract per labeler using the §IV-C
// machinery on the gold-feedback ψ. Weights follow the same spirit as
// Eq. (5): full weight for honest labelers, penalized for malicious ones.
func DesignContracts(labelers []Labeler, task Task, part effort.Partition, maliceWeightPenalty float64) (map[string]*contract.PiecewiseLinear, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string]*contract.PiecewiseLinear, len(labelers))
	for _, l := range labelers {
		if err := l.Validate(part.YMax()); err != nil {
			return nil, err
		}
		psi, err := l.Curve.FeedbackPsi(task.Gold, part.YMax())
		if err != nil {
			return nil, fmt.Errorf("labeler %s: %w", l.ID, err)
		}
		agent := &worker.Agent{
			ID:    l.ID,
			Class: l.Class,
			Psi:   psi,
			Beta:  l.Beta,
			Omega: l.Omega,
			Size:  1,
		}
		// Requester values a correct gold answer at ItemValue and
		// discounts malicious labelers' contributions.
		w := task.ItemValue
		if l.Class != worker.Honest {
			w -= maliceWeightPenalty
		}
		res, err := core.Design(agent, core.Config{Part: part, Mu: task.Mu, W: w})
		if err != nil {
			return nil, fmt.Errorf("design for %s: %w", l.ID, err)
		}
		out[l.ID] = res.Contract
	}
	return out, nil
}

// RunBatch simulates one batch: every labeler best-responds to its
// contract, labels all items with accuracy p(y) (malicious labelers
// override non-gold answers toward `true` with probability TargetBias),
// feedback is measured on the gold items, and labels are aggregated by
// gold-accuracy-weighted majority vote.
func RunBatch(rng *rand.Rand, labelers []Labeler, task Task, contracts map[string]*contract.PiecewiseLinear, part effort.Partition) (*Result, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("nil rng: %w", ErrBadModel)
	}
	n := len(task.Truth)
	type vote struct {
		labels []bool
		weight float64
	}
	votes := make([]vote, 0, len(labelers))
	res := &Result{}

	sorted := append([]Labeler(nil), labelers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, l := range sorted {
		if err := l.Validate(part.YMax()); err != nil {
			return nil, err
		}
		c, ok := contracts[l.ID]
		if !ok || c == nil {
			continue // excluded labeler
		}
		psi, err := l.Curve.FeedbackPsi(task.Gold, part.YMax())
		if err != nil {
			return nil, err
		}
		agent := &worker.Agent{ID: l.ID, Class: l.Class, Psi: psi, Beta: l.Beta, Omega: l.Omega, Size: 1}
		resp, err := agent.BestResponse(c, part)
		if err != nil {
			return nil, fmt.Errorf("best response for %s: %w", l.ID, err)
		}
		p := l.Curve.Eval(resp.Effort)

		labels := make([]bool, n)
		goldCorrect := 0
		for i := 0; i < n; i++ {
			correct := rng.Float64() < p
			if correct {
				labels[i] = task.Truth[i]
			} else {
				labels[i] = !task.Truth[i]
			}
			if i >= task.Gold && l.TargetBias > 0 && rng.Float64() < l.TargetBias {
				labels[i] = true // push the promoted class on non-gold items
			}
			if i < task.Gold && labels[i] == task.Truth[i] {
				goldCorrect++
			}
		}
		// Pay on measured gold feedback.
		comp := c.Eval(float64(goldCorrect))
		res.PerWorker = append(res.PerWorker, WorkerOutcome{
			ID:           l.ID,
			Effort:       resp.Effort,
			Accuracy:     p,
			GoldCorrect:  goldCorrect,
			Compensation: comp,
		})
		res.TotalPay += comp

		// Vote weight: demonstrated gold accuracy above chance.
		acc := float64(goldCorrect) / float64(task.Gold)
		weight := acc - 0.5
		if weight > 0 {
			votes = append(votes, vote{labels: labels, weight: weight})
		}
	}

	// Weighted majority vote per item; ties and empty panels fall to
	// the majority class of the gold set (the requester's best prior).
	prior := goldMajority(task)
	res.Aggregate = make([]bool, n)
	correct := 0
	for i := 0; i < n; i++ {
		var score float64
		for _, v := range votes {
			if v.labels[i] {
				score += v.weight
			} else {
				score -= v.weight
			}
		}
		switch {
		case score > 0:
			res.Aggregate[i] = true
		case score < 0:
			res.Aggregate[i] = false
		default:
			res.Aggregate[i] = prior
		}
		if res.Aggregate[i] == task.Truth[i] {
			correct++
		}
	}
	res.AggregateAccuracy = float64(correct) / float64(n)
	res.RequesterUtility = task.ItemValue*float64(correct) - task.Mu*res.TotalPay
	return res, nil
}

// goldMajority returns the majority truth over the gold items.
func goldMajority(task Task) bool {
	trues := 0
	for i := 0; i < task.Gold; i++ {
		if task.Truth[i] {
			trues++
		}
	}
	return trues*2 >= task.Gold
}

// NewTask builds a random task with the given size, gold count, and
// positive-class rate.
func NewTask(rng *rand.Rand, items, gold int, positiveRate, itemValue, mu float64) (Task, error) {
	if rng == nil {
		return Task{}, fmt.Errorf("nil rng: %w", ErrBadModel)
	}
	if positiveRate < 0 || positiveRate > 1 {
		return Task{}, fmt.Errorf("positiveRate=%v outside [0,1]: %w", positiveRate, ErrBadModel)
	}
	truth := make([]bool, items)
	for i := range truth {
		truth[i] = rng.Float64() < positiveRate
	}
	t := Task{Truth: truth, Gold: gold, ItemValue: itemValue, Mu: mu}
	if err := t.Validate(); err != nil {
		return Task{}, err
	}
	return t, nil
}
