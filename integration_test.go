package dyncontract

import (
	"bytes"
	"context"
	"math"
	"testing"

	"dyncontract/internal/baseline"
	"dyncontract/internal/core"
	"dyncontract/internal/equilibrium"
	"dyncontract/internal/experiments"
	"dyncontract/internal/platform"
	"dyncontract/internal/solver"
	"dyncontract/internal/synth"
	"dyncontract/internal/trace"
	"dyncontract/internal/worker"
)

// TestEndToEndPipeline drives the complete §IV strategy framework once,
// asserting the cross-module invariants that no single package test can
// see: trace → estimation → clustering → fitting → decomposition →
// parallel design → equilibrium audit → marketplace simulation.
func TestEndToEndPipeline(t *testing.T) {
	pipe, err := experiments.BuildPipeline(synth.SmallScale(2024))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	params := experiments.DefaultParams()

	// 1. The trace round-trips through the JSONL codec unharmed.
	var buf bytes.Buffer
	if err := pipe.Trace.WriteJSONL(&buf); err != nil {
		t.Fatalf("encode trace: %v", err)
	}
	back, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if len(back.Reviews) != len(pipe.Trace.Reviews) {
		t.Fatalf("codec lost reviews: %d vs %d", len(back.Reviews), len(pipe.Trace.Reviews))
	}

	// 2. A rebuilt pipeline from the decoded trace reaches identical
	// classifications (everything downstream is deterministic).
	pipe2, err := experiments.BuildPipelineFromTrace(back, 2024)
	if err != nil {
		t.Fatalf("pipeline from decoded trace: %v", err)
	}
	if len(pipe2.CMIDs) != len(pipe.CMIDs) || len(pipe2.NCMIDs) != len(pipe.NCMIDs) {
		t.Errorf("classification drifted across codec: CM %d vs %d, NCM %d vs %d",
			len(pipe2.CMIDs), len(pipe.CMIDs), len(pipe2.NCMIDs), len(pipe.NCMIDs))
	}

	// 3. Parallel decomposition designs a contract for every agent, and
	// each passes the follower equilibrium certificate.
	pop, err := pipe.BuildPopulation(params, 60)
	if err != nil {
		t.Fatalf("population: %v", err)
	}
	subs := make([]solver.Subproblem, len(pop.Agents))
	for i, a := range pop.Agents {
		subs[i] = solver.Subproblem{
			Agent:  a,
			Config: core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]},
		}
	}
	outcomes, err := solver.SolveAll(context.Background(), subs, solver.Options{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	results := solver.Results(outcomes)
	if len(results) != len(pop.Agents) {
		t.Fatalf("designed %d of %d contracts", len(results), len(pop.Agents))
	}
	eqOpts := equilibrium.Options{GridPoints: 400, Step: 0.05, Tol: 1e-6}
	audited := 0
	for _, res := range results {
		if audited >= 10 {
			break // auditing a sample keeps the test fast
		}
		rep, err := equilibrium.CheckFollower(res.Agent, res.Contract,
			core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[res.Agent.ID]},
			res.Response.Effort, eqOpts)
		if err != nil {
			t.Fatalf("equilibrium check: %v", err)
		}
		if !rep.Holds {
			t.Errorf("agent %s: follower equilibrium violated (grid %v > predicted %v)",
				res.Agent.ID, rep.BestGridUtility, rep.PredictedUtility)
		}
		audited++
	}

	// 4. Honest workers are paid more per capita than malicious ones
	// across the designed contracts (the Fig. 8(b) ordering), and every
	// requester utility respects its Theorem 4.1 upper bound.
	var honestPay, malPay []float64
	for _, res := range results {
		if res.RequesterUtility > res.UpperBound+1e-7 {
			t.Errorf("agent %s: utility %v above UB %v", res.Agent.ID, res.RequesterUtility, res.UpperBound)
		}
		pay := res.Response.Compensation / float64(res.Agent.Size)
		if res.Agent.Class == worker.Honest {
			honestPay = append(honestPay, pay)
		} else {
			malPay = append(malPay, pay)
		}
	}
	if mean(honestPay) <= mean(malPay) {
		t.Errorf("honest mean pay %v <= malicious %v", mean(honestPay), mean(malPay))
	}

	// 5. The simulated marketplace prefers the dynamic policy over both
	// baselines, consistently across rounds.
	ctx := context.Background()
	dyn, err := platform.Simulate(ctx, pop, &platform.DynamicPolicy{}, 3, platform.Options{})
	if err != nil {
		t.Fatalf("simulate dynamic: %v", err)
	}
	excl, err := platform.Simulate(ctx, pop, &baseline.ExcludeMalicious{Threshold: 0.5}, 3, platform.Options{})
	if err != nil {
		t.Fatalf("simulate exclusion: %v", err)
	}
	fixed, err := platform.Simulate(ctx, pop, &baseline.FixedPayment{Amount: 1}, 3, platform.Options{})
	if err != nil {
		t.Fatalf("simulate fixed: %v", err)
	}
	dynTotal := platform.TotalUtility(dyn)
	if dynTotal <= platform.TotalUtility(excl) {
		t.Errorf("dynamic %v <= exclusion %v", dynTotal, platform.TotalUtility(excl))
	}
	if dynTotal <= platform.TotalUtility(fixed) {
		t.Errorf("dynamic %v <= fixed %v", dynTotal, platform.TotalUtility(fixed))
	}
	for _, r := range dyn {
		if math.IsNaN(r.Utility) || math.IsInf(r.Utility, 0) {
			t.Fatalf("round %d: non-finite utility", r.Index)
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
