package solver

import (
	"context"
	"math"
	"testing"

	"dyncontract/internal/core"
	"dyncontract/internal/telemetry"
)

// TestSolveAllMetrics pins the pool's instrumentation: with Options.Metrics
// set, every subproblem that actually runs increments MetricDesigns,
// failures increment MetricDesignErrors, and each design's latency lands in
// MetricDesignSeconds.
func TestSolveAllMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	subs := solverFixture(t, 12)
	subs[3].Config.Mu = -1
	subs[9].Config.Mu = -1
	outcomes, err := SolveAll(context.Background(), subs, Options{
		Parallelism:     3,
		ContinueOnError: true,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricDesigns]; got != uint64(len(subs)) {
		t.Errorf("%s = %d, want %d", MetricDesigns, got, len(subs))
	}
	if got := s.Counters[MetricDesignErrors]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricDesignErrors, got)
	}
	h, ok := s.Histograms[MetricDesignSeconds]
	if !ok {
		t.Fatalf("missing histogram %s", MetricDesignSeconds)
	}
	if h.Count != uint64(len(subs)) {
		t.Errorf("%s count = %d, want %d", MetricDesignSeconds, h.Count, len(subs))
	}
	if h.Sum < 0 || math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
		t.Errorf("%s sum = %v, want finite ≥ 0", MetricDesignSeconds, h.Sum)
	}
	// One SolveAll call = one batch-size observation carrying the
	// subproblem count.
	bh, ok := s.Histograms[MetricBatchSize]
	if !ok {
		t.Fatalf("missing histogram %s", MetricBatchSize)
	}
	if bh.Count != 1 || bh.Sum != float64(len(subs)) {
		t.Errorf("%s count/sum = %d/%v, want 1/%d", MetricBatchSize, bh.Count, bh.Sum, len(subs))
	}

	// The instrumented outcomes must match an un-instrumented run.
	clean := solverFixture(t, 12)
	want, err := SolveAll(context.Background(), clean, Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range outcomes {
		if i == 3 || i == 9 {
			continue
		}
		if oc.Result.RequesterUtility != want[i].Result.RequesterUtility {
			t.Errorf("outcome %d: instrumented utility %v != plain %v",
				i, oc.Result.RequesterUtility, want[i].Result.RequesterUtility)
		}
	}
}

// TestSolveAllSequentialScratch pins the Parallelism=1 fast path: every
// design runs inline over the caller's scratch (no goroutines), outcomes
// — including per-entry errors under ContinueOnError — match the pooled
// route, and the metrics counters stay in parity.
func TestSolveAllSequentialScratch(t *testing.T) {
	subs := solverFixture(t, 10)
	subs[4].Config.Mu = -1
	reg := telemetry.NewRegistry()
	scratch := &core.Scratch{}
	outcomes, err := SolveAll(context.Background(), subs, Options{
		Parallelism:     1,
		ContinueOnError: true,
		Metrics:         reg,
		Scratch:         scratch,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The failing subproblem bails in config validation before the
	// scratch is touched; the other nine designs all reuse it.
	if got := scratch.Uses(); got != 9 {
		t.Errorf("scratch uses = %d, want 9", got)
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricDesigns]; got != uint64(len(subs)) {
		t.Errorf("%s = %d, want %d", MetricDesigns, got, len(subs))
	}
	if got := s.Counters[MetricDesignErrors]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricDesignErrors, got)
	}

	pooled, err := SolveAll(context.Background(), subs, Options{Parallelism: 4, ContinueOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outcomes {
		seqErr, poolErr := outcomes[i].Err, pooled[i].Err
		if (seqErr == nil) != (poolErr == nil) {
			t.Fatalf("outcome %d: sequential err %v, pooled err %v", i, seqErr, poolErr)
		}
		if seqErr != nil {
			if seqErr.Error() != poolErr.Error() {
				t.Errorf("outcome %d: error %q != pooled %q", i, seqErr, poolErr)
			}
			continue
		}
		if outcomes[i].Result.RequesterUtility != pooled[i].Result.RequesterUtility {
			t.Errorf("outcome %d: sequential utility %v != pooled %v",
				i, outcomes[i].Result.RequesterUtility, pooled[i].Result.RequesterUtility)
		}
	}
}

// TestSolveAllNopMetrics checks the disabled path: telemetry.Nop behaves
// exactly like no registry at all.
func TestSolveAllNopMetrics(t *testing.T) {
	subs := solverFixture(t, 6)
	outcomes, err := SolveAll(context.Background(), subs, Options{Metrics: telemetry.Nop})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range outcomes {
		if oc.Err != nil || oc.Result == nil {
			t.Errorf("outcome %d: %+v", i, oc)
		}
	}
}
