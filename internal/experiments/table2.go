package experiments

import (
	"fmt"

	"dyncontract/internal/cluster"
)

// paperTable2 is the published distribution of collusive-community sizes
// (Table II of the paper), in percent of the 47 communities.
var paperTable2 = map[string]float64{
	"2": 51.2, "3": 22.0, "4": 7.3, "5": 2.4, "6": 9.8, ">=10": 4.9,
}

// RunTable2 regenerates Table II: the distribution of detected
// collusive-community sizes, side by side with the paper's numbers.
func RunTable2(p *Pipeline, _ Params) (*Report, error) {
	buckets := cluster.SizeDistribution(p.Communities, []int{2, 3, 4, 5, 6}, 10)
	rep := &Report{
		ID:     "table2",
		Title:  "distribution of collusive community size",
		Header: []string{"size", "communities", "percent", "paper-percent"},
	}
	totalWorkers := 0
	for _, c := range p.Communities {
		totalWorkers += c.Size()
	}
	for _, b := range buckets {
		paper := "-"
		if v, ok := paperTable2[b.Label]; ok {
			paper = f1(v)
		}
		rep.Rows = append(rep.Rows, []string{b.Label, fmt.Sprintf("%d", b.Count), f1(b.Percent), paper})
		rep.BarLabels = append(rep.BarLabels, b.Label)
		rep.BarValues = append(rep.BarValues, b.Percent)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("detected %d communities covering %d collusive workers (paper: 47 communities, 212 workers)",
			len(p.Communities), totalWorkers))
	return rep, nil
}
