// Package server is the serving layer over internal/engine: a
// stdlib-only long-lived HTTP service that owns named contract-design
// sessions (population + policy + ledger) behind a versioned JSON API.
//
// The concurrency contract (DESIGN.md § Serving layer):
//
//   - Round advancement and drift are serialized per session through a
//     single-writer loop, so ledgers are byte-identical to the same
//     request sequence applied sequentially to a bare engine.
//   - Design-only queries are coalesced into micro-batches (window or
//     size trigger) and served through one engine.Designer.DesignBatch
//     pass per batch, against the same design cache the round loop warms.
//   - Overload produces backpressure, not queues without bound: bounded
//     per-session queues and an in-flight cap return 429 with
//     Retry-After; a draining server returns 503.
//
// Every route is instrumented through telemetry.InstrumentHandler, and
// the server exposes /metrics (Prometheus text) + /debug/pprof/ via
// internal/obs, so one scrape tells the whole serving story.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/worker"
)

// maxBodyBytes caps request bodies (inline populations can be large, but
// not unbounded).
const maxBodyBytes = 8 << 20

// ErrBadRequest marks request payloads that decoded but failed
// validation; handlers map it to 400.
var ErrBadRequest = errors.New("server: invalid request")

// PsiSpec is the wire form of a quadratic effort function ψ.
type PsiSpec struct {
	R2 float64 `json:"r2"`
	R1 float64 `json:"r1"`
	R0 float64 `json:"r0"`
}

// AgentSpec is the wire form of one worker agent plus its requester-side
// parameters (feedback weight, estimated malice probability).
type AgentSpec struct {
	ID          string  `json:"id"`
	Class       string  `json:"class"` // honest | malicious | community
	Psi         PsiSpec `json:"psi"`
	Beta        float64 `json:"beta"`
	Omega       float64 `json:"omega,omitempty"`
	Size        int     `json:"size,omitempty"` // 0 means 1
	Reservation float64 `json:"reservation,omitempty"`
	Weight      float64 `json:"weight"`
	Malice      float64 `json:"malice,omitempty"`
}

// Agent converts the spec into a worker.Agent. Structural validation is
// deferred to Population.Validate / Agent.Validate, which see the
// partition; only the class name is resolved here.
func (s *AgentSpec) Agent() (*worker.Agent, error) {
	cls, err := parseClass(s.Class)
	if err != nil {
		return nil, err
	}
	size := s.Size
	if size == 0 {
		size = 1
	}
	return &worker.Agent{
		ID:          s.ID,
		Class:       cls,
		Psi:         effort.Quadratic{R2: s.Psi.R2, R1: s.Psi.R1, R0: s.Psi.R0},
		Beta:        s.Beta,
		Omega:       s.Omega,
		Size:        size,
		Reservation: s.Reservation,
	}, nil
}

func parseClass(s string) (worker.Class, error) {
	switch s {
	case "honest":
		return worker.Honest, nil
	case "malicious", "non-collusive-malicious":
		return worker.NonCollusiveMalicious, nil
	case "community", "collusive-malicious":
		return worker.CollusiveMalicious, nil
	default:
		return 0, fmt.Errorf("unknown class %q (want honest, malicious, or community): %w", s, ErrBadRequest)
	}
}

func classString(c worker.Class) string {
	switch c {
	case worker.Honest:
		return "honest"
	case worker.NonCollusiveMalicious:
		return "malicious"
	case worker.CollusiveMalicious:
		return "community"
	default:
		return c.String()
	}
}

// CreateSessionRequest mints a session either from a synthetic trace
// (scale + seed, the CLIs' pipeline) or from an explicit inline
// population (agents + partition + mu). Exactly one of the two routes
// must be used.
type CreateSessionRequest struct {
	Name string `json:"name,omitempty"`

	// Synthetic route.
	Scale    string `json:"scale,omitempty"` // small | paper
	Seed     int64  `json:"seed,omitempty"`
	PerClass int    `json:"per_class,omitempty"` // agents sampled per class; 0 means 200

	// Explicit route.
	Agents []AgentSpec `json:"agents,omitempty"`
	M      int         `json:"m,omitempty"` // effort intervals; 0 means 20
	Delta  float64     `json:"delta,omitempty"`
	Mu     float64     `json:"mu,omitempty"` // 0 means 1

	// Common knobs.
	Policy    string  `json:"policy,omitempty"` // dynamic (default) | exclude | fixed
	Threshold float64 `json:"threshold,omitempty"`
	Amount    float64 `json:"amount,omitempty"`
	Shards    int     `json:"shards,omitempty"`
}

// Validate checks the payload's internal consistency — everything that
// can be decided without building the population.
func (r *CreateSessionRequest) Validate() error {
	synthetic := r.Scale != ""
	explicit := len(r.Agents) > 0
	if synthetic == explicit {
		return fmt.Errorf("exactly one of scale or agents must be set: %w", ErrBadRequest)
	}
	if synthetic && r.Scale != "small" && r.Scale != "paper" {
		return fmt.Errorf("unknown scale %q (want small or paper): %w", r.Scale, ErrBadRequest)
	}
	if r.PerClass < 0 {
		return fmt.Errorf("per_class=%d must be >= 0: %w", r.PerClass, ErrBadRequest)
	}
	if explicit {
		if r.M < 0 {
			return fmt.Errorf("m=%d must be >= 0: %w", r.M, ErrBadRequest)
		}
		if !(r.Delta > 0) || math.IsInf(r.Delta, 0) {
			return fmt.Errorf("delta=%v must be positive and finite: %w", r.Delta, ErrBadRequest)
		}
		if r.Mu < 0 || math.IsNaN(r.Mu) || math.IsInf(r.Mu, 0) {
			return fmt.Errorf("mu=%v must be finite and >= 0: %w", r.Mu, ErrBadRequest)
		}
	}
	switch r.Policy {
	case "", "dynamic", "exclude", "fixed":
	default:
		return fmt.Errorf("unknown policy %q (want dynamic, exclude, or fixed): %w", r.Policy, ErrBadRequest)
	}
	if r.Shards < 0 || r.Shards > 1024 {
		return fmt.Errorf("shards=%d must be in [0, 1024]: %w", r.Shards, ErrBadRequest)
	}
	return nil
}

// CacheStatsJSON is the wire form of engine.CacheStats.
type CacheStatsJSON struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// JournalInfo reports a durable session's journal state inside
// SessionInfo: the last assigned sequence number, and — for sessions
// restored at boot — whether recovery happened and how many command
// records were replayed past the snapshot.
type JournalInfo struct {
	Seq       uint64 `json:"seq"`
	Recovered bool   `json:"recovered,omitempty"`
	Replayed  int    `json:"replayed,omitempty"`
}

// SessionInfo is the GET /v1/sessions/{id} response.
type SessionInfo struct {
	ID           string         `json:"id"`
	Name         string         `json:"name,omitempty"`
	Policy       string         `json:"policy"`
	Agents       int            `json:"agents"`
	Rounds       int            `json:"rounds"`
	TotalUtility float64        `json:"total_utility"`
	Cache        CacheStatsJSON `json:"cache"`
	Draining     bool           `json:"draining,omitempty"`
	Journal      *JournalInfo   `json:"journal,omitempty"`
}

// SnapshotResponse is the POST /v1/sessions/{id}/snapshot response: the
// sequence number the snapshot covers, its serialized size, and the
// number of completed rounds it captured.
type SnapshotResponse struct {
	Seq    uint64 `json:"seq"`
	Bytes  int    `json:"bytes"`
	Rounds int    `json:"rounds"`
}

// AdvanceRoundRequest is the POST /v1/sessions/{id}/rounds body. An empty
// body advances one round and returns the summary only.
type AdvanceRoundRequest struct {
	IncludeOutcomes  bool `json:"include_outcomes,omitempty"`
	IncludeContracts bool `json:"include_contracts,omitempty"`
}

// OutcomeJSON is the wire form of one agent's round outcome.
type OutcomeJSON struct {
	AgentID      string  `json:"agent_id"`
	Class        string  `json:"class"`
	Size         int     `json:"size"`
	Excluded     bool    `json:"excluded,omitempty"`
	Declined     bool    `json:"declined,omitempty"`
	Effort       float64 `json:"effort"`
	Feedback     float64 `json:"feedback"`
	Compensation float64 `json:"compensation"`
	Weight       float64 `json:"weight"`
}

func outcomeJSON(oc engine.AgentOutcome) OutcomeJSON {
	return OutcomeJSON{
		AgentID:      oc.AgentID,
		Class:        classString(oc.Class),
		Size:         oc.Size,
		Excluded:     oc.Excluded,
		Declined:     oc.Declined,
		Effort:       oc.Effort,
		Feedback:     oc.Feedback,
		Compensation: oc.Compensation,
		Weight:       oc.Weight,
	}
}

// RoundJSON is one completed round on the wire: the POST .../rounds
// response and the GET .../rounds list element.
type RoundJSON struct {
	Round     int                                  `json:"round"`
	Benefit   float64                              `json:"benefit"`
	Cost      float64                              `json:"cost"`
	Utility   float64                              `json:"utility"`
	Agents    int                                  `json:"agents"`
	Excluded  int                                  `json:"excluded"`
	Declined  int                                  `json:"declined"`
	Outcomes  []OutcomeJSON                        `json:"outcomes,omitempty"`
	Contracts map[string]*contract.PiecewiseLinear `json:"contracts,omitempty"`
}

func roundJSON(r engine.Round, includeOutcomes bool) RoundJSON {
	out := RoundJSON{
		Round:   r.Index,
		Benefit: r.Benefit,
		Cost:    r.Cost,
		Utility: r.Utility,
		Agents:  len(r.Outcomes),
	}
	for _, oc := range r.Outcomes {
		if oc.Excluded {
			out.Excluded++
		}
		if oc.Declined {
			out.Declined++
		}
		if includeOutcomes {
			out.Outcomes = append(out.Outcomes, outcomeJSON(oc))
		}
	}
	return out
}

// DesignQueryRequest is the POST /v1/sessions/{id}/design body: either a
// reference to a session agent (weight from the session) or an inline
// agent spec (weight from the spec).
type DesignQueryRequest struct {
	AgentID string     `json:"agent_id,omitempty"`
	Agent   *AgentSpec `json:"agent,omitempty"`
}

// Validate checks exactly one query form is present.
func (r *DesignQueryRequest) Validate() error {
	if (r.AgentID == "") == (r.Agent == nil) {
		return fmt.Errorf("exactly one of agent_id or agent must be set: %w", ErrBadRequest)
	}
	if r.Agent != nil {
		if math.IsNaN(r.Agent.Weight) || math.IsInf(r.Agent.Weight, 0) {
			return fmt.Errorf("agent weight=%v must be finite: %w", r.Agent.Weight, ErrBadRequest)
		}
	}
	return nil
}

// DesignQueryResponse carries the designed contract back, with the size
// of the micro-batch the query rode in (1 = it flew alone).
type DesignQueryResponse struct {
	AgentID   string                    `json:"agent_id,omitempty"`
	Contract  *contract.PiecewiseLinear `json:"contract"`
	BatchSize int                       `json:"batch_size"`
}

// DriftRequest is the POST /v1/sessions/{id}/drift body: sparse per-agent
// mutations applied atomically between rounds through the single-writer
// loop. Add joins new agents (full specs, weight and malice included) and
// Remove retires existing ones by ID — both declared to the engine as a
// structural scope, so only the shards owning those agents re-slot while
// everyone else's retained state stays warm. Unknown agent IDs, duplicate
// or overlapping add/remove declarations, and mutations that break
// population validation reject the whole request and leave the session
// untouched.
type DriftRequest struct {
	Weights map[string]float64 `json:"weights,omitempty"`
	Beta    map[string]float64 `json:"beta,omitempty"`
	Omega   map[string]float64 `json:"omega,omitempty"`
	Psi     map[string]PsiSpec `json:"psi,omitempty"`
	Add     []AgentSpec        `json:"add,omitempty"`
	Remove  []string           `json:"remove,omitempty"`
}

// Validate rejects an empty drift (nothing to apply is almost always a
// caller bug) and malformed structural declarations — value-level checks
// run against the population.
func (r *DriftRequest) Validate() error {
	if len(r.Weights)+len(r.Beta)+len(r.Omega)+len(r.Psi)+len(r.Add)+len(r.Remove) == 0 {
		return fmt.Errorf("drift with no mutations: %w", ErrBadRequest)
	}
	for i := range r.Add {
		spec := &r.Add[i]
		if spec.ID == "" {
			return fmt.Errorf("add[%d] has no agent id: %w", i, ErrBadRequest)
		}
		if math.IsNaN(spec.Weight) || math.IsInf(spec.Weight, 0) {
			return fmt.Errorf("add %q weight=%v must be finite: %w", spec.ID, spec.Weight, ErrBadRequest)
		}
	}
	for i, id := range r.Remove {
		if id == "" {
			return fmt.Errorf("remove[%d] has no agent id: %w", i, ErrBadRequest)
		}
	}
	return nil
}

// DriftResponse reports the number of field mutations applied, the
// distinct agents touched (declared to the engine as the drift scope, so
// only their shards rebuild), the agents joined and left (declared as the
// structural scope), and the session's completed-round count at the time.
type DriftResponse struct {
	Updated int `json:"updated"`
	Touched int `json:"touched"`
	Joined  int `json:"joined,omitempty"`
	Left    int `json:"left,omitempty"`
	Rounds  int `json:"rounds"`
}

// CreateSessionResponse is the POST /v1/sessions response.
type CreateSessionResponse struct {
	ID     string `json:"id"`
	Agents int    `json:"agents"`
	Policy string `json:"policy"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// decodeJSON strictly decodes one JSON value: unknown fields and trailing
// data are errors (malformed bodies must be rejected loudly, not half
// understood). An empty body decodes the zero value, letting POST
// endpoints with all-optional fields accept no body at all.
func decodeJSON(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body = zero value
		}
		return fmt.Errorf("%v: %w", err, ErrBadRequest)
	}
	// A second value (or trailing garbage) is an error; io.EOF is clean.
	var extra json.RawMessage
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		return fmt.Errorf("trailing data after JSON body: %w", ErrBadRequest)
	}
	return nil
}
