package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReviewsCSVRoundTrip(t *testing.T) {
	tr := validTrace(t)
	var buf bytes.Buffer
	if err := WriteReviewsCSV(&buf, tr.Reviews); err != nil {
		t.Fatalf("WriteReviewsCSV: %v", err)
	}
	back, err := ReadReviewsCSV(&buf)
	if err != nil {
		t.Fatalf("ReadReviewsCSV: %v", err)
	}
	if !reflect.DeepEqual(back, tr.Reviews) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, tr.Reviews)
	}
}

func TestReadReviewsCSVBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong header":  "a,b,c,d,e,f,g\n",
		"bad score":     "id,worker_id,product_id,score,length,upvotes,round\nr1,w1,p1,abc,1,1,0\n",
		"bad length":    "id,worker_id,product_id,score,length,upvotes,round\nr1,w1,p1,3,xx,1,0\n",
		"bad upvotes":   "id,worker_id,product_id,score,length,upvotes,round\nr1,w1,p1,3,1,xx,0\n",
		"bad round":     "id,worker_id,product_id,score,length,upvotes,round\nr1,w1,p1,3,1,1,xx\n",
		"invalid score": "id,worker_id,product_id,score,length,upvotes,round\nr1,w1,p1,9,1,1,0\n",
		"short row":     "id,worker_id,product_id,score,length,upvotes,round\nr1,w1\n",
		"empty":         "",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadReviewsCSV(strings.NewReader(input)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestWorkersCSVRoundTrip(t *testing.T) {
	tr := validTrace(t)
	var buf bytes.Buffer
	if err := WriteWorkersCSV(&buf, tr.Workers); err != nil {
		t.Fatalf("WriteWorkersCSV: %v", err)
	}
	back, err := ReadWorkersCSV(&buf)
	if err != nil {
		t.Fatalf("ReadWorkersCSV: %v", err)
	}
	if !reflect.DeepEqual(back, tr.Workers) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, tr.Workers)
	}
}

func TestWorkersCSVMultiTarget(t *testing.T) {
	workers := map[string]Worker{
		"m1": {ID: "m1", Malicious: true, TargetProducts: []string{"p1", "p2", "p3"}},
	}
	var buf bytes.Buffer
	if err := WriteWorkersCSV(&buf, workers); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkersCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back["m1"].TargetProducts, []string{"p1", "p2", "p3"}) {
		t.Errorf("targets = %v", back["m1"].TargetProducts)
	}
}

func TestReadWorkersCSVBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong header":  "x,y,z\n",
		"bad bool":      "id,malicious,target_products\nw1,maybe,\n",
		"honest target": "id,malicious,target_products\nw1,false,p1\n",
		"duplicate":     "id,malicious,target_products\nw1,false,\nw1,false,\n",
		"empty":         "",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadWorkersCSV(strings.NewReader(input)); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := validTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(back.Reviews, tr.Reviews) {
		t.Error("reviews mismatch after JSONL round trip")
	}
	if !reflect.DeepEqual(back.Workers, tr.Workers) {
		t.Error("workers mismatch after JSONL round trip")
	}
	if !reflect.DeepEqual(back.ExpertScores, tr.ExpertScores) {
		t.Error("expert scores mismatch after JSONL round trip")
	}
}

func TestReadJSONLValidates(t *testing.T) {
	// Review referencing a worker missing from the header must fail.
	input := `{"workers":{"w1":{"id":"w1"}},"expert_scores":{}}
{"id":"r1","worker_id":"ghost","product_id":"p1","score":3,"length":1,"upvotes":0,"round":0}
`
	if _, err := ReadJSONL(strings.NewReader(input)); err == nil {
		t.Error("unknown worker accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json")); err == nil {
		t.Error("malformed header accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"workers":{"w1":{"id":"w1"}}}` + "\nnope\n")); err == nil {
		t.Error("malformed review line accepted")
	}
}
