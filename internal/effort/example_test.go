package effort_test

import (
	"fmt"
	"log"
	"math/rand"

	"dyncontract/internal/effort"
)

// Example builds the paper's quadratic effort function and inspects its
// shape: feedback grows with effort at a diminishing rate.
func Example() {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("psi(0)=%.1f psi(10)=%.1f psi(20)=%.1f\n", psi.Eval(0), psi.Eval(10), psi.Eval(20))
	fmt.Printf("marginal feedback: psi'(0)=%.2f psi'(20)=%.2f\n", psi.Deriv(0), psi.Deriv(20))
	fmt.Printf("apex (past which more effort hurts): y=%.0f\n", psi.Apex())
	// Output:
	// psi(0)=1.0 psi(10)=19.0 psi(20)=33.0
	// marginal feedback: psi'(0)=2.00 psi'(20)=1.20
	// apex (past which more effort hurts): y=50
}

// ExampleFitConcaveQuadratic fits an effort function from noisy
// (effort, feedback) observations — the §IV-B step that turns trace data
// into model inputs.
func ExampleFitConcaveQuadratic() {
	truth := effort.Quadratic{R2: -0.01, R1: 1.5, R0: 2}
	rng := rand.New(rand.NewSource(1))
	var efforts, feedbacks []float64
	for i := 0; i < 500; i++ {
		y := rng.Float64() * 40
		efforts = append(efforts, y)
		feedbacks = append(feedbacks, truth.Eval(y)+0.2*rng.NormFloat64())
	}
	res, err := effort.FitConcaveQuadratic(efforts, feedbacks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected=%v r2 close=%v r1 close=%v\n",
		res.Projected,
		res.Quadratic.R2 > -0.012 && res.Quadratic.R2 < -0.008,
		res.Quadratic.R1 > 1.4 && res.Quadratic.R1 < 1.6)
	// Output:
	// projected=false r2 close=true r1 close=true
}

// ExamplePartition shows the effort-axis discretization of §III-A.
func ExamplePartition() {
	part, err := effort.NewPartition(4, 10) // 4 intervals of width 10
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [0, %.0f], interval of y=25: %d\n", part.YMax(), part.IntervalOf(25))
	// Output:
	// range [0, 40], interval of y=25: 3
}
