package server

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeRequest drives the strict JSON decoder and the request
// validators across every wire DTO: whatever arrives on the socket,
// decode+validate must classify it (nil or error) without panicking —
// the server's only defense layer in front of the engine.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		// Valid payloads for each DTO.
		`{"agents":[{"id":"h1","class":"honest","psi":{"r2":-0.25,"r1":2,"r0":0},"beta":1,"weight":1}],"m":10,"delta":0.2,"mu":1}`,
		`{"scale":"small","seed":7,"per_class":10,"policy":"exclude","threshold":0.5}`,
		`{"include_outcomes":true,"include_contracts":true}`,
		`{"agent_id":"h1"}`,
		`{"agent":{"id":"x","class":"malicious","psi":{"r2":-0.25,"r1":2},"beta":1,"omega":0.5,"weight":1.5}}`,
		`{"weights":{"h1":2},"beta":{"m1":1.5},"psi":{"c1":{"r2":-0.3,"r1":1,"r0":0}}}`,
		// Hostile shapes: truncation, huge numbers, wrong types, unknown
		// fields, duplicate keys, trailing data, deep nesting.
		`{"agents":[{"id":"h1","class":"hon`,
		`{"mu":1e999,"delta":-1e999,"seed":9223372036854775807}`,
		`{"agents":"not-a-list"}`,
		`{"bogus_field":1}`,
		`{"m":1,"m":2}`,
		`{} {"second":"value"}`,
		`{"weights":{"":0}}`,
		strings.Repeat(`{"agent":`, 100) + `null` + strings.Repeat(`}`, 100),
		``,
		`null`,
		`[]`,
		`"just a string"`,
	}
	for _, s := range seeds {
		for kind := byte(0); kind < 5; kind++ {
			f.Add(kind, []byte(s))
		}
	}
	f.Fuzz(func(t *testing.T, kind byte, data []byte) {
		r := bytes.NewReader(data)
		switch kind % 5 {
		case 0:
			var v CreateSessionRequest
			if decodeJSON(r, &v) == nil {
				_ = v.Validate()
			}
		case 1:
			var v AdvanceRoundRequest
			_ = decodeJSON(r, &v)
		case 2:
			var v DesignQueryRequest
			if decodeJSON(r, &v) == nil {
				_ = v.Validate()
			}
		case 3:
			var v DriftRequest
			if decodeJSON(r, &v) == nil {
				_ = v.Validate()
			}
		case 4:
			// The agent converter behind both create and design paths.
			var v AgentSpec
			if decodeJSON(r, &v) == nil {
				_, _ = v.Agent()
			}
		}
	})
}
