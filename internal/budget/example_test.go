package budget_test

import (
	"fmt"
	"log"

	"dyncontract/internal/budget"
)

// Example allocates contracts under a payment budget: each worker offers a
// menu of (cost, benefit) options and the MCKP solver picks one per
// worker.
func Example() {
	menus := []budget.Menu{
		{AgentID: "alice", Options: []budget.Option{
			{K: 0},
			{K: 1, Cost: 2, Benefit: 5},
			{K: 2, Cost: 5, Benefit: 8},
		}},
		{AgentID: "bob", Options: []budget.Option{
			{K: 0},
			{K: 1, Cost: 3, Benefit: 4},
		}},
	}
	for _, b := range []float64{2, 5, 10} {
		alloc, err := budget.SolveGreedy(menus, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("B=%-4.0f benefit=%.0f cost=%.0f alice@k%d bob@k%d\n",
			b, alloc.TotalBenefit, alloc.TotalCost,
			alloc.Choice["alice"].K, alloc.Choice["bob"].K)
	}
	// Output:
	// B=2    benefit=5 cost=2 alice@k1 bob@k0
	// B=5    benefit=9 cost=5 alice@k1 bob@k1
	// B=10   benefit=12 cost=8 alice@k2 bob@k1
}
