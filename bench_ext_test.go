package dyncontract

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dyncontract/internal/actor"
	"dyncontract/internal/adversary"
	"dyncontract/internal/assignment"
	"dyncontract/internal/classify"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/equilibrium"
	"dyncontract/internal/experiments"
	"dyncontract/internal/platform"
	"dyncontract/internal/reputation"
	"dyncontract/internal/solver"
	"dyncontract/internal/worker"
)

// BenchmarkDesignByPartition is the partition-size ablation: design cost
// as a function of m (the algorithm is O(m²) best responses).
func BenchmarkDesignByPartition(b *testing.B) {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{5, 10, 20, 40, 80} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			part, err := effort.NewPartition(m, 40.0/float64(m))
			if err != nil {
				b.Fatal(err)
			}
			a, err := worker.NewHonest("bench", psi, 1, part.YMax())
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.Config{Part: part, Mu: 1, W: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Design(a, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverScaling measures the decomposed solver across pool sizes
// — the §IV-B parallel decomposition ablation.
func BenchmarkSolverScaling(b *testing.B) {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		b.Fatal(err)
	}
	part, err := effort.NewPartition(20, 2)
	if err != nil {
		b.Fatal(err)
	}
	a, err := worker.NewHonest("bench", psi, 1, part.YMax())
	if err != nil {
		b.Fatal(err)
	}
	subs := make([]solver.Subproblem, 512)
	for i := range subs {
		subs[i] = solver.Subproblem{Agent: a, Config: core.Config{Part: part, Mu: 1, W: 1}}
	}
	ctx := context.Background()
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				outcomes, err := solver.SolveAll(ctx, subs, solver.Options{Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				if len(solver.Results(outcomes)) != len(subs) {
					b.Fatal("lost results")
				}
			}
		})
	}
}

// BenchmarkActorEngineRound measures one round of the message-passing
// marketplace (compare with BenchmarkPlatformRound's sequential loop).
func BenchmarkActorEngineRound(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	pop, err := p.BuildPopulation(params, 200)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := actor.NewEngine(pop, &platform.DynamicPolicy{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversaryScenario measures the strategic-attacker extension:
// on-off attacker vs adaptive defense over 6 rounds.
func BenchmarkAdversaryScenario(b *testing.B) {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		b.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		b.Fatal(err)
	}
	build := func() *adversary.Scenario {
		pop := &platform.Population{
			Weights:    make(map[string]float64),
			MaliceProb: make(map[string]float64),
			Part:       part,
			Mu:         1,
		}
		for i := 0; i < 8; i++ {
			a, err := worker.NewHonest(fmt.Sprintf("h%02d", i), psi, 1, part.YMax())
			if err != nil {
				b.Fatal(err)
			}
			pop.Agents = append(pop.Agents, a)
			pop.Weights[a.ID] = 1.5
			pop.MaliceProb[a.ID] = 0.05
		}
		m, err := worker.NewMalicious("attacker", psi, 1, 0.5, part.YMax())
		if err != nil {
			b.Fatal(err)
		}
		pop.Agents = append(pop.Agents, m)
		pop.Weights[m.ID] = 1.2
		pop.MaliceProb[m.ID] = 0.1
		tr, err := reputation.NewTracker(reputation.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		return &adversary.Scenario{
			Pop:        pop,
			Strategies: map[string]adversary.Strategy{"attacker": adversary.OnOff{Period: 3, Duty: 1}},
			Tracker:    tr,
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := build()
		if _, err := sc.Run(ctx, &platform.DynamicPolicy{}, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifyBatch measures the classification extension: design +
// label + aggregate for a 500-item batch with 8 labelers.
func BenchmarkClassifyBatch(b *testing.B) {
	part, err := effort.NewPartition(10, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	task, err := classify.NewTask(rng, 500, 80, 0.4, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	var labelers []classify.Labeler
	for i := 0; i < 6; i++ {
		labelers = append(labelers, classify.Labeler{
			ID: fmt.Sprintf("h%02d", i), Class: worker.Honest,
			Curve: classify.DefaultCurve(), Beta: 0.2,
		})
	}
	for i := 0; i < 2; i++ {
		labelers = append(labelers, classify.Labeler{
			ID: fmt.Sprintf("m%02d", i), Class: worker.NonCollusiveMalicious,
			Curve: classify.DefaultCurve(), Beta: 0.2, Omega: 0.1, TargetBias: 0.8,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contracts, err := classify.DesignContracts(labelers, task, part, 5)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := classify.RunBatch(rand.New(rand.NewSource(int64(i))), labelers, task, contracts, part); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEquilibriumChecks measures the follower and leader equilibrium
// certificates on a designed contract.
func BenchmarkEquilibriumChecks(b *testing.B) {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		b.Fatal(err)
	}
	part, err := effort.NewPartition(10, 4)
	if err != nil {
		b.Fatal(err)
	}
	a, err := worker.NewHonest("eq", psi, 1, part.YMax())
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Part: part, Mu: 1, W: 1}
	res, err := core.Design(a, cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := equilibrium.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := equilibrium.CheckFollower(a, res.Contract, cfg, res.Response.Effort, opts); err != nil {
			b.Fatal(err)
		}
		if _, err := equilibrium.CheckLeader(a, res.Contract, cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudgetAllocation measures the budget-feasible extension: menu
// construction + MCKP (greedy and DP) over an 80-agent population.
func BenchmarkBudgetAllocation(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBudget(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivitySweep measures the estimator-quality ablation.
func BenchmarkSensitivitySweep(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSensitivity(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHungarianMatching measures the exact assignment solver on a
// 128x128 value matrix.
func BenchmarkHungarianMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n := 128
	value := make([][]float64, n)
	for i := range value {
		value[i] = make([]float64, n)
		for j := range value[i] {
			value[i][j] = rng.Float64() * 100
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assignment.Optimal(value); err != nil {
			b.Fatal(err)
		}
	}
}
