// Package stats provides the descriptive statistics used throughout the
// evaluation harness: means, variances, percentiles, histograms, and
// compact five-number summaries.
//
// All functions treat their input as read-only; where sorting is required a
// copy is made. Percentile definitions follow the "linear interpolation
// between closest ranks" convention (the same convention NumPy's default
// uses), which matches how the paper reports 5th/95th percentile
// compensations in Fig. 8(b).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("mean: %w", ErrEmpty)
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the unbiased (n−1) sample variance of xs. A single
// observation has variance 0.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("variance: %w", ErrEmpty)
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("percentile: %w", ErrEmpty)
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("percentile: p=%v out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (minVal, maxVal float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("minmax: %w", ErrEmpty)
	}
	minVal, maxVal = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minVal {
			minVal = x
		}
		if x > maxVal {
			maxVal = x
		}
	}
	return minVal, maxVal, nil
}

// Summary is a compact description of a sample, mirroring the aggregates the
// paper reports (mean with 5th/95th percentile whiskers).
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	P5   float64
	P50  float64
	P95  float64
	Max  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("summarize: %w", ErrEmpty)
	}
	mean, _ := Mean(xs)
	std, _ := StdDev(xs)
	minV, maxV, _ := MinMax(xs)
	p5, _ := Percentile(xs, 5)
	p50, _ := Percentile(xs, 50)
	p95, _ := Percentile(xs, 95)
	return Summary{
		N:    len(xs),
		Mean: mean,
		Std:  std,
		Min:  minV,
		P5:   p5,
		P50:  p50,
		P95:  p95,
		Max:  maxV,
	}, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p5=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P5, s.P50, s.P95, s.Max)
}

// Histogram counts observations into uniform-width bins over [lo, hi). Values
// outside the range are clamped into the first/last bin, which is the
// behaviour the experiment plots want (nothing silently dropped).
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with the given number of bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("histogram: bins=%d must be positive", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("histogram: invalid range [%v, %v)", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Total returns the number of observations in the histogram.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns per-bin fractions of the total. An empty histogram
// yields all zeros.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	total := h.Total()
	if total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples xs and ys. It errs on mismatched lengths, fewer than two pairs,
// or zero variance in either sample.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("correlation: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("correlation: need >= 2 pairs: %w", ErrEmpty)
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("correlation: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
