package experiments

import (
	"context"
	"fmt"

	"dyncontract/internal/dynamics"
	"dyncontract/internal/platform"
	"dyncontract/internal/reputation"
	"dyncontract/internal/textplot"
)

// RunDynamics analyzes the stability of the closed adaptive loop
// (beliefs → contracts → responses → observations → beliefs): starting
// from deliberately mis-calibrated beliefs, how fast does the marketplace
// reach steady-state pricing? Expected shape: the big correction happens
// in the first observed round and the weight movement contracts
// geometrically to a fixed point.
func RunDynamics(p *Pipeline, params Params) (*Report, error) {
	pop, err := p.BuildPopulation(params, 80)
	if err != nil {
		return nil, err
	}
	// Scramble the initial beliefs: halve every weight and inflate every
	// malice estimate, simulating a cold-started requester.
	for id := range pop.Weights {
		pop.Weights[id] *= 0.5
		if pop.MaliceProb[id] < 0.5 {
			pop.MaliceProb[id] = 0.5
		}
	}
	tracker, err := reputation.NewTracker(reputation.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res, err := dynamics.Run(context.Background(), pop, &platform.DynamicPolicy{}, tracker,
		dynamics.Config{MaxRounds: 30, Tol: 1e-4})
	if err != nil {
		return nil, fmt.Errorf("dynamics: %w", err)
	}

	rep := &Report{
		ID:     "dynamics",
		Title:  "fixed-point convergence of the adaptive pricing loop (extension)",
		Header: []string{"round", "weight-delta", "requester-utility"},
	}
	rounds := make([]float64, res.Rounds)
	for r := 0; r < res.Rounds; r++ {
		rounds[r] = float64(r)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", r), fmt.Sprintf("%.5f", res.WeightDeltas[r]), f2(res.Utilities[r]),
		})
	}
	rep.Series = []textplot.Series{{Name: "requester utility", X: rounds, Y: res.Utilities}}
	rep.XLabel = "round"
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"loop converged to a pricing fixed point: %v (at round %d of max 30)", res.Converged, res.ConvergedAt))
	if res.Rounds >= 2 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"mispriced round 0 corrected after first observation (utility %.1f -> %.1f): %v",
			res.Utilities[0], res.Utilities[res.Rounds-1], res.Utilities[res.Rounds-1] > res.Utilities[0]))
	}
	return rep, nil
}
