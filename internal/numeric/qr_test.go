package numeric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows: want error, got nil")
	}
	if _, err := MatrixFromRows(nil); err == nil {
		t.Fatal("nil rows: want error, got nil")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	got, err := m.MulVec(Vector{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{2, 1}, {4, 3}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d, want 3x2", at.Rows(), at.Cols())
	}
	if at.At(2, 0) != 3 || at.At(0, 1) != 4 {
		t.Error("transpose entries wrong")
	}
}

func TestSolveLinearExact(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := Vector{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	want := Vector{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 exactly from 4 consistent points.
	a, _ := MatrixFromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := Vector{1, 3, 5, 7}
	x, res, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 2, 1e-10) {
		t.Errorf("x = %v, want [1 2]", x)
	}
	if res > 1e-10 {
		t.Errorf("residual = %v, want ~0", res)
	}
}

func TestLeastSquaresResidualMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 40)
	b := NewVector(40)
	for i := range rows {
		rows[i] = []float64{1, rng.NormFloat64(), rng.NormFloat64()}
		b[i] = rng.NormFloat64() * 3
	}
	a, _ := MatrixFromRows(rows)
	x, res, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	ax, err := a.MulVec(x)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	diff, _ := ax.Sub(b)
	if !almostEqual(res, diff.Norm2(), 1e-8) {
		t.Errorf("QR residual %v != direct residual %v", res, diff.Norm2())
	}
}

// Property: the least-squares residual is orthogonal to the column space,
// i.e. Aᵀ(Ax − b) ≈ 0.
func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m, n = 25, 4
		rows := make([][]float64, m)
		b := NewVector(m)
		for i := 0; i < m; i++ {
			r := make([]float64, n)
			for j := range r {
				r[j] = rng.NormFloat64()
			}
			rows[i] = r
			b[i] = rng.NormFloat64()
		}
		a, err := MatrixFromRows(rows)
		if err != nil {
			return false
		}
		x, _, err := LeastSquares(a, b)
		if err != nil {
			// Random Gaussian matrices are almost surely full rank; treat
			// rank deficiency as a failure.
			return false
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		r, _ := ax.Sub(b)
		atr, err := a.Transpose().MulVec(r)
		if err != nil {
			return false
		}
		return atr.NormInf() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	// Second column is 2x the first.
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	_, _, err := LeastSquares(a, Vector{1, 2, 3})
	if !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}})
	_, _, err := LeastSquares(a, Vector{1})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestQRReconstruction(t *testing.T) {
	// Verify R (upper triangle of factors) satisfies ‖Ax−b‖ consistency on a
	// known system; indirectly checks the factorization by solving with
	// multiple right-hand sides.
	a, _ := MatrixFromRows([][]float64{
		{4, 1},
		{2, 3},
		{0, 5},
	})
	qr, err := DecomposeQR(a)
	if err != nil {
		t.Fatalf("DecomposeQR: %v", err)
	}
	for _, b := range []Vector{{1, 0, 0}, {0, 1, 0}, {1, 2, 3}} {
		x, _, err := qr.SolveLeastSquares(b)
		if err != nil {
			t.Fatalf("SolveLeastSquares: %v", err)
		}
		// Check normal equations AᵀAx = Aᵀb.
		at := a.Transpose()
		ata, _ := at.Mul(a)
		lhs, _ := ata.MulVec(x)
		rhs, _ := at.MulVec(b)
		for i := range lhs {
			if !almostEqual(lhs[i], rhs[i], 1e-10) {
				t.Errorf("normal equations violated: lhs=%v rhs=%v", lhs, rhs)
			}
		}
	}
}

func TestSolveLinearNonSquare(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if _, err := SolveLinear(a, Vector{1, 2, 3}); err == nil {
		t.Fatal("SolveLinear on non-square: want error")
	}
}

func TestMatrixAllFinite(t *testing.T) {
	m := NewMatrix(2, 2)
	if !m.AllFinite() {
		t.Error("zero matrix reported non-finite")
	}
	m.Set(1, 1, math.NaN())
	if m.AllFinite() {
		t.Error("NaN matrix reported finite")
	}
}

func TestMatrixPanicsAndClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 7)
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 7 {
		t.Error("Clone shares backing storage")
	}
	if m.String() == "" {
		t.Error("String empty")
	}
	for _, f := range []func(){
		func() { NewMatrix(0, 1) },
		func() { NewMatrix(1, -1) },
		func() { m.At(2, 0) },
		func() { m.Set(0, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestMatrixMulDimensionMismatch(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}})
	b, _ := MatrixFromRows([][]float64{{1, 2}})
	if _, err := a.Mul(b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := a.MulVec(Vector{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MulVec err = %v, want ErrDimensionMismatch", err)
	}
}

func TestSolveLeastSquaresWrongRHS(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1}, {2}})
	qr, err := DecomposeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := qr.SolveLeastSquares(Vector{1, 2, 3}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}
