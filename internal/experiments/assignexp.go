package experiments

import (
	"fmt"

	"dyncontract/internal/assignment"
	"dyncontract/internal/core"
)

// assignTaskValues are the heterogeneous task values for the assignment
// experiment: some tasks are worth much more to the requester.
var assignTaskValues = []float64{2.0, 1.5, 1.2, 1.0, 0.8, 0.6, 0.5, 0.4}

// assignWorkers caps the worker sample (tasks are scarcer than workers, so
// matching is the binding decision).
const assignWorkers = 24

// RunAssignment evaluates the worker–task matching extension (related
// work [22]): tasks are heterogeneous in value and in fit, so before
// designing contracts the requester must decide who works on what. The
// per-(worker, task) value is the contract-design utility scaled by the
// task's value and a worker–task affinity; the exact Hungarian matching is
// compared against greedy. Expected shapes: the optimal matching never
// loses to greedy, and both beat a naive index-order assignment.
func RunAssignment(p *Pipeline, params Params) (*Report, error) {
	part, err := p.Partition(params.M)
	if err != nil {
		return nil, err
	}
	ids := sampleIDs(p.HonestIDs, assignWorkers)
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: no workers to assign", ErrPipeline)
	}

	// Base utility per worker from its designed contract.
	base := make([]float64, len(ids))
	for i, id := range ids {
		a, err := p.Agent(id, params, part)
		if err != nil {
			return nil, err
		}
		w, err := p.WorkerWeight(id, params)
		if err != nil {
			return nil, err
		}
		if w <= 0 {
			w = 0.01
		}
		res, err := core.Design(a, core.Config{Part: part, Mu: params.Mu, W: w})
		if err != nil {
			return nil, fmt.Errorf("assignment design %s: %w", id, err)
		}
		base[i] = res.RequesterUtility
	}

	// Value matrix: base utility × task value × deterministic affinity in
	// [0.5, 1.5] (a worker suits some task domains better than others).
	value := make([][]float64, len(ids))
	for wi := range ids {
		value[wi] = make([]float64, len(assignTaskValues))
		for ti, tv := range assignTaskValues {
			affinity := 0.5 + float64((wi*7+ti*13)%11)/10.0
			value[wi][ti] = base[wi] * tv * affinity
		}
	}

	optimal, err := assignment.Optimal(value)
	if err != nil {
		return nil, err
	}
	greedy, err := assignment.Greedy(value)
	if err != nil {
		return nil, err
	}
	// Naive baseline: worker i takes task i while tasks last.
	naive := 0.0
	for wi := 0; wi < len(ids) && wi < len(assignTaskValues); wi++ {
		if value[wi][wi] > 0 {
			naive += value[wi][wi]
		}
	}

	rep := &Report{
		ID:     "assignment",
		Title:  fmt.Sprintf("worker-task matching over %d workers, %d heterogeneous tasks (extension)", len(ids), len(assignTaskValues)),
		Header: []string{"matcher", "total-value", "vs-optimal"},
		Rows: [][]string{
			{"hungarian (optimal)", f2(optimal.TotalValue), "1.000"},
			{"greedy", f2(greedy.TotalValue), f3(greedy.TotalValue / optimal.TotalValue)},
			{"naive (index order)", f2(naive), f3(naive / optimal.TotalValue)},
		},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"optimal >= greedy >= naive: %v",
		optimal.TotalValue >= greedy.TotalValue-1e-9 && greedy.TotalValue >= naive-1e-9))
	return rep, nil
}
