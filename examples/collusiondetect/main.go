// Collusiondetect: find collusive review rings in a trace (§IV-A).
//
// Run with:
//
//	go run ./examples/collusiondetect [trace.jsonl]
//
// Without an argument a synthetic trace is generated in memory. With one,
// a JSONL trace written by `tracegen -format jsonl` is analyzed instead.
// The example builds the worker-targeting auxiliary graph, extracts
// connected components, and prints each detected community with its shared
// target products, plus the Table II size distribution.
package main

import (
	"fmt"
	"log"
	"os"

	"dyncontract/internal/cluster"
	"dyncontract/internal/synth"
	"dyncontract/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("collusiondetect: ")

	var tr *trace.Trace
	var err error
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		tr, err = trace.ReadJSONL(f)
		closeErr := f.Close()
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		if closeErr != nil {
			log.Fatalf("close: %v", closeErr)
		}
		fmt.Printf("loaded %s\n", os.Args[1])
	} else {
		tr, err = synth.Generate(synth.SmallScale(23))
		if err != nil {
			log.Fatalf("generate: %v", err)
		}
		fmt.Println("generated a synthetic trace (pass a .jsonl path to analyze your own)")
	}
	fmt.Printf("%d reviews, %d workers (%d labelled malicious), %d products\n\n",
		len(tr.Reviews), len(tr.Workers), len(tr.MaliciousWorkerIDs()), tr.NumProducts())

	comms := cluster.FindCommunities(tr, tr.MaliciousWorkerIDs())
	fmt.Printf("detected %d collusive communities:\n", len(comms))
	for i, c := range comms {
		members := c.Members
		preview := members
		if len(preview) > 6 {
			preview = preview[:6]
		}
		fmt.Printf("  #%02d size=%-3d targets=%v members=%v", i, c.Size(), c.Targets, preview)
		if len(members) > 6 {
			fmt.Printf(" (+%d more)", len(members)-6)
		}
		fmt.Println()
	}

	fmt.Println("\ncommunity size distribution (cf. paper Table II):")
	for _, b := range cluster.SizeDistribution(comms, []int{2, 3, 4, 5, 6}, 10) {
		fmt.Printf("  size %-5s %3d communities (%5.1f%%)\n", b.Label, b.Count, b.Percent)
	}

	pc := cluster.PartnerCounts(comms)
	fmt.Printf("\n%d workers have at least one collusive partner\n", len(pc))
}
