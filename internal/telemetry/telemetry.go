// Package telemetry is the repository's dependency-free metrics layer: a
// concurrency-safe registry of named counters, gauges, and fixed-bucket
// histograms, a monotonic-clock Timer, and two exposition sinks
// (Prometheus text format and JSONL snapshots).
//
// Design constraints, in order:
//
//  1. Zero allocations on the hot path. Counter.Add, Gauge.Set, and
//     Histogram.Observe are single atomic operations (a short CAS loop for
//     float accumulation); handles are resolved once, up front, and then
//     used round after round.
//  2. Nil is off. Every metric method is nil-receiver-safe and every
//     Registry method accepts a nil receiver, so instrumented code holds
//     unresolved handles instead of branching; Nop (a nil *Registry) is
//     the canonical "telemetry disabled" value.
//  3. Standard library only. The package imports nothing from this module
//     and nothing outside the standard library, so any layer — engine,
//     solver, CLIs — can depend on it without cycles.
//
// Metric names follow the repo-wide scheme dyncontract_<pkg>_<name>
// (DESIGN.md § Telemetry), with the usual Prometheus conventions: _total
// for counters, _seconds for duration histograms.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// Nop is the disabled registry: a nil *Registry. Every method on it (and
// on the nil metric handles it hands out) is a cheap no-op, so passing
// Nop anywhere a registry is accepted turns collection off without any
// call-site branching.
var Nop *Registry

// Registry is a concurrency-safe collection of named metrics. Metrics are
// created on first use (get-or-create) or adopted via the Register
// methods; names live in one flat namespace per metric kind.
//
// The zero value is NOT ready to use — call NewRegistry. (A nil *Registry
// is valid, and means "collection disabled"; see Nop.)
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, ready-to-use registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// mustValidName panics on names outside the Prometheus-compatible
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*. An invalid name is a programmer
// error (names are compile-time constants throughout this repo), so it is
// caught loudly rather than silently exported as garbage.
func mustValidName(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				panic(fmt.Sprintf("telemetry: metric name %q starts with a digit", name))
			}
		default:
			panic(fmt.Sprintf("telemetry: metric name %q contains %q", name, c))
		}
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	mustValidName(name)
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	mustValidName(name)
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given uniform [lo, hi) bucket layout on first use. An existing name
// returns the existing histogram unchanged (first layout wins); invalid
// layouts panic, mirroring NewHistogram's errors. A nil registry returns
// a nil (no-op) handle.
func (r *Registry) Histogram(name string, lo, hi float64, bins int) *Histogram {
	if r == nil {
		return nil
	}
	mustValidName(name)
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		panic(fmt.Sprintf("telemetry: histogram %q: %v", name, err))
	}
	r.hists[name] = h
	return h
}

// RegisterCounter adopts an externally-owned counter under name, so a
// component's private counters (e.g. the engine design cache's hit/miss
// atomics) appear in snapshots without double bookkeeping. Registering an
// already-taken name replaces the previous metric — the snapshot follows
// the most recently registered instance. Nil registry or counter is a
// no-op.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	mustValidName(name)
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// RegisterGauge adopts an externally-owned gauge under name, with the
// same replacement semantics as RegisterCounter.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	mustValidName(name)
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// Snapshot captures a point-in-time copy of every registered metric. A
// nil registry snapshots empty. Snapshots are plain data: mergeable
// (Snapshot.Merge), JSON-serializable, and renderable as Prometheus text
// (WriteText).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// sortedKeys returns m's keys in lexicographic order — exposition sinks
// use it so output is deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
