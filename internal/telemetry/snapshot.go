package telemetry

import "fmt"

// Snapshot is a point-in-time copy of a registry's metrics: plain data,
// safe to serialize, compare, and merge. The zero Snapshot is empty.
type Snapshot struct {
	// Counters maps name to cumulative count.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges maps name to current level.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps name to bins and totals.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's frozen state. Counts follow the
// stats.Histogram convention: Counts[i] is the number of observations in
// [Lo+i·width, Lo+(i+1)·width), width = (Hi−Lo)/len(Counts), with
// out-of-range observations clamped into the edge bins.
type HistogramSnapshot struct {
	// Lo, Hi bound the binned range [Lo, Hi).
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Counts holds per-bin observation counts.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the exact (unquantized) sum of observations.
	Sum float64 `json:"sum"`
	// ExemplarValue/ExemplarLabel carry the histogram's worst labeled
	// observation (see Histogram.ObserveExemplar) — in this repo the
	// label is the trace ID of the slowest sampled request, linking the
	// metric to a trace in /debug/traces. Absent when nothing labeled.
	ExemplarValue float64 `json:"exemplar_value,omitempty"`
	ExemplarLabel string  `json:"exemplar_label,omitempty"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the bin holding the target rank — the resolution is one bin
// width, which is what fixed uniform buckets can promise. Out-of-range q
// is clamped, an empty histogram returns 0, and because out-of-range
// observations clamp into the edge bins, tail quantiles of a saturated
// histogram return the edge bin's bound rather than inventing values
// beyond [Lo, Hi).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			frac := (rank - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Hi
}

// Merge combines two histogram snapshots bin by bin. Both must share the
// same bucket layout (Lo, Hi, bin count); merging an empty (zero-value)
// snapshot on either side returns the other unchanged.
func (h HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(h.Counts) == 0 {
		return o, nil
	}
	if len(o.Counts) == 0 {
		return h, nil
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return HistogramSnapshot{}, fmt.Errorf(
			"telemetry: merge histogram [%v,%v)x%d with [%v,%v)x%d: bucket layouts differ",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	out := HistogramSnapshot{
		Lo:     h.Lo,
		Hi:     h.Hi,
		Counts: make([]uint64, len(h.Counts)),
		Count:  h.Count + o.Count,
		Sum:    h.Sum + o.Sum,
	}
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] + o.Counts[i]
	}
	// Exemplars keep the worst sample across both sides, matching the
	// max-keeping semantics of ObserveExemplar.
	out.ExemplarValue, out.ExemplarLabel = h.ExemplarValue, h.ExemplarLabel
	if o.ExemplarLabel != "" && (h.ExemplarLabel == "" || o.ExemplarValue > h.ExemplarValue) {
		out.ExemplarValue, out.ExemplarLabel = o.ExemplarValue, o.ExemplarLabel
	}
	return out, nil
}

// Merge combines two snapshots, e.g. from parallel simulation shards:
// counters add, histograms merge bin-wise (layouts must agree), and for
// gauges — levels, not counts — the other snapshot's value wins where
// both define one (treat the receiver as "earlier" and o as "later").
func (s Snapshot) Merge(o Snapshot) (Snapshot, error) {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range o.Counters {
		out.Counters[name] += v
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range o.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h
	}
	for name, h := range o.Histograms {
		merged, err := out.Histograms[name].Merge(h)
		if err != nil {
			return Snapshot{}, fmt.Errorf("%w (metric %q)", err, name)
		}
		out.Histograms[name] = merged
	}
	return out, nil
}
