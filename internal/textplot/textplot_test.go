package textplot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out, err := Chart([]Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}, Options{Title: "test chart", XLabel: "x axis"})
	if err != nil {
		t.Fatalf("Chart: %v", err)
	}
	for _, want := range []string{"test chart", "x axis", "* up", "o down", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Rising series: '*' appears in both the top and bottom plot rows.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l)
		}
	}
	if len(plotLines) < 4 {
		t.Fatalf("too few plot rows: %d", len(plotLines))
	}
	if !strings.Contains(plotLines[0], "*") {
		t.Error("max of rising series not in top row")
	}
	if !strings.Contains(plotLines[len(plotLines)-1], "*") {
		t.Error("min of rising series not in bottom row")
	}
}

func TestChartSinglePoint(t *testing.T) {
	out, err := Chart([]Series{{Name: "dot", X: []float64{5}, Y: []float64{7}}}, Options{})
	if err != nil {
		t.Fatalf("single point: %v", err)
	}
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}

func TestChartErrors(t *testing.T) {
	if _, err := Chart(nil, Options{}); !errors.Is(err, ErrBadPlot) {
		t.Error("empty series accepted")
	}
	if _, err := Chart([]Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}, Options{}); !errors.Is(err, ErrBadPlot) {
		t.Error("length mismatch accepted")
	}
	if _, err := Chart([]Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}, Options{}); !errors.Is(err, ErrBadPlot) {
		t.Error("NaN accepted")
	}
	if _, err := Chart([]Series{{Name: "x", X: []float64{1}, Y: []float64{1}}}, Options{Width: 2, Height: 2}); !errors.Is(err, ErrBadPlot) {
		t.Error("tiny plot area accepted")
	}
	seven := make([]Series, 7)
	for i := range seven {
		seven[i] = Series{Name: "s", X: []float64{1}, Y: []float64{1}}
	}
	if _, err := Chart(seven, Options{}); !errors.Is(err, ErrBadPlot) {
		t.Error("too many series accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges (all same x or y) must not divide by zero.
	out, err := Chart([]Series{{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}}, Options{})
	if err != nil {
		t.Fatalf("flat series: %v", err)
	}
	if !strings.Contains(out, "*") {
		t.Error("flat series not plotted")
	}
}

func TestBar(t *testing.T) {
	out, err := Bar([]string{"a", "bb"}, []float64{1, 2}, 10)
	if err != nil {
		t.Fatalf("Bar: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.HasPrefix(lines[1], "bb") {
		t.Errorf("labels misaligned:\n%s", out)
	}
	// The larger value gets the full-width bar.
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Errorf("half bar = %d #s, want 5:\n%s", strings.Count(lines[0], "#"), out)
	}
}

func TestBarZeroValues(t *testing.T) {
	out, err := Bar([]string{"z"}, []float64{0}, 10)
	if err != nil {
		t.Fatalf("zero bar: %v", err)
	}
	if strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}

func TestBarErrors(t *testing.T) {
	if _, err := Bar(nil, nil, 10); !errors.Is(err, ErrBadPlot) {
		t.Error("empty accepted")
	}
	if _, err := Bar([]string{"a"}, []float64{1, 2}, 10); !errors.Is(err, ErrBadPlot) {
		t.Error("mismatch accepted")
	}
	if _, err := Bar([]string{"a"}, []float64{-1}, 10); !errors.Is(err, ErrBadPlot) {
		t.Error("negative accepted")
	}
	if _, err := Bar([]string{"a"}, []float64{math.Inf(1)}, 10); !errors.Is(err, ErrBadPlot) {
		t.Error("Inf accepted")
	}
}
