package experiments

import (
	"fmt"
	"sort"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/stats"
	"dyncontract/internal/textplot"
	"dyncontract/internal/worker"
)

// fig8aMs are the partition sizes compared in Fig. 8(a).
var fig8aMs = []int{10, 20, 40}

// fig8aWorkers caps the number of selected workers, as in the paper
// ("we first select 200 honest workers").
const fig8aWorkers = 200

// fig8aMinReviews is the selection threshold ("at least 20 reviews").
const fig8aMinReviews = 20

// RunFig8a regenerates Fig. 8(a): the compensation paid to up to 200
// prolific honest workers under the designed contract, against Lemma 4.3's
// lower bound, for m = 10, 20, 40 intervals. The paper's observation — the
// gap between compensation and its lower bound shrinks as the partition is
// refined — is asserted in the notes.
//
// Per-worker variation comes from per-worker effort functions: each
// selected worker has ≥ 20 reviews, enough to fit an individual concave
// quadratic; workers whose individual fit is rejected fall back to the
// class fit.
func RunFig8a(p *Pipeline, params Params) (*Report, error) {
	ids := p.prolificHonest()
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: no honest workers with >= %d reviews", ErrPipeline, fig8aMinReviews)
	}
	if len(ids) > fig8aWorkers {
		ids = ids[:fig8aWorkers]
	}

	rep := &Report{
		ID:     "fig8a",
		Title:  fmt.Sprintf("compensation vs Lemma 4.3 lower bound (%d honest workers, >=%d reviews)", len(ids), fig8aMinReviews),
		Header: []string{"m", "mean-comp", "p5-comp", "p95-comp", "mean-lower", "mean-gap"},
	}

	var prevGap = -1.0
	shrinking := true
	var ms, meanComps, meanLowers []float64
	for _, m := range fig8aMs {
		part, err := p.Partition(m)
		if err != nil {
			return nil, err
		}
		var comps, lowers, gaps []float64
		for _, id := range ids {
			psi := p.workerPsi(id, part)
			a, err := worker.NewHonest(id, psi, params.Beta, part.YMax())
			if err != nil {
				return nil, fmt.Errorf("fig8a: agent %s: %w", id, err)
			}
			w, err := p.WorkerWeight(id, params)
			if err != nil {
				return nil, err
			}
			if w <= 0 {
				continue // requester would not contract this worker at all
			}
			res, err := core.Design(a, core.Config{Part: part, Mu: params.Mu, W: w})
			if err != nil {
				return nil, fmt.Errorf("fig8a: design %s: %w", id, err)
			}
			lb := core.CompensationLowerBound(a, part, res.KOpt)
			comps = append(comps, res.Response.Compensation)
			lowers = append(lowers, lb)
			gaps = append(gaps, res.Response.Compensation-lb)
		}
		if len(comps) == 0 {
			return nil, fmt.Errorf("%w: all workers skipped at m=%d", ErrPipeline, m)
		}
		sum, err := stats.Summarize(comps)
		if err != nil {
			return nil, err
		}
		meanLB, _ := stats.Mean(lowers)
		meanGap, _ := stats.Mean(gaps)
		if prevGap >= 0 && meanGap > prevGap+1e-9 {
			shrinking = false
		}
		prevGap = meanGap
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", m), f3(sum.Mean), f3(sum.P5), f3(sum.P95), f3(meanLB), f3(meanGap),
		})
		ms = append(ms, float64(m))
		meanComps = append(meanComps, sum.Mean)
		meanLowers = append(meanLowers, meanLB)
	}
	rep.Series = []textplot.Series{
		{Name: "mean compensation", X: ms, Y: meanComps},
		{Name: "mean lower bound", X: ms, Y: meanLowers},
	}
	rep.XLabel = "number of effort intervals m"
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"mean gap to the lower bound shrinks as m grows: %v (paper: compensation converges to optimal as the partition densifies)",
		shrinking))
	return rep, nil
}

// prolificHonest returns honest workers with at least fig8aMinReviews
// reviews, sorted by ID for determinism.
func (p *Pipeline) prolificHonest() []string {
	prolific := p.Trace.WorkersWithAtLeast(fig8aMinReviews)
	honest := make(map[string]bool, len(p.HonestIDs))
	for _, id := range p.HonestIDs {
		honest[id] = true
	}
	var out []string
	for _, id := range prolific {
		if honest[id] {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// workerPsi fits an individual effort function from the worker's own
// reviews, falling back to the class fit when the individual fit fails or
// is not increasing across the partition range.
func (p *Pipeline) workerPsi(id string, part effort.Partition) effort.Quadratic {
	classPsi := p.ClassFit[p.ClassOf(id)].Quadratic
	raw, fb := p.Trace.EffortFeedbackPoints([]string{id})
	if len(raw) < 5 {
		return classPsi
	}
	efforts := make([]float64, len(raw))
	for i, y := range raw {
		efforts[i] = y / p.EffortScale
	}
	fit, err := effort.FitConcaveQuadratic(efforts, fb)
	if err != nil {
		return classPsi
	}
	if fit.Quadratic.Validate(part.YMax()) != nil {
		return classPsi
	}
	return fit.Quadratic
}
