#!/bin/sh
# Engine benchmark runner (`make bench`): runs the round-loop benchmarks —
# BenchmarkEngineRound1k (design-dedup and respond-memo regimes),
# BenchmarkEngineRound100k (sequential vs sharded warm rounds, plus the
# sharded-rebuild, sparse-drift-1pct, and structural-churn-1pct drift
# variants pinning the touched-scope and join/leave-splice speedups),
# BenchmarkTelemetryOverhead (instrumented vs
# telemetry.Nop), BenchmarkTraceOverhead (span tracing disabled vs
# sampled-out vs sampled-in on the same warm round), the HTTP serving
# benchmarks
# BenchmarkServerDesignBatch and BenchmarkServerDriftRoute (tracked for
# trend only, not regression-gated — they ride
# the loopback network stack), and BenchmarkJournalAppend (the
# write-ahead hop per journaled command, buffered and fsync; trend only —
# the fsync arm benchmarks the storage stack, not the code) — with
# -benchmem, prints the standard output, and writes the parsed results to
# BENCH_engine.json as one JSON array of
#   {"name", "iterations", "ns_per_op", "bytes_per_op", "allocs_per_op"}
# objects, so the acceptance bars (telemetry overhead ≤5%, respond-memo
# warm-round speedup, sharded-warm ≥4× sequential-warm at 100k agents,
# sparse-drift-1pct ≤10% of a full sharded rebuild) can be checked from
# the file.
#
# Before overwriting, the fresh run is diffed against the committed
# BENCH_engine.json: every benchmark's ns/op delta is printed, a >10%
# regression warns, and a >25% regression on a gated benchmark
# (dedup-cold — the batched cold design path, optimized and now
# regression-gated — dedup-warm, respond-memo-warm, sequential-warm,
# sharded-warm, sparse-drift, structural-churn — the in-place join/leave
# splice — TelemetryOverhead, TraceOverhead/disabled —
# the last pins that tracing left off costs nothing) fails the run
# without touching the committed baseline. Set BENCH_ALLOW_REGRESSION=1
# to record
# the new numbers anyway (e.g. after an intentional trade-off or on a
# slower machine).
set -eu

cd "$(dirname "$0")/.."

out=BENCH_engine.json
raw=$(mktemp)
fresh=$(mktemp)
trap 'rm -f "$raw" "$fresh"' EXIT

go test -run '^$' -bench 'BenchmarkEngineRound1k|BenchmarkEngineRound100k|BenchmarkTelemetryOverhead|BenchmarkTraceOverhead|BenchmarkServerDesignBatch|BenchmarkServerDriftRoute|BenchmarkJournalAppend' -benchmem . | tee "$raw"

awk '
BEGIN { print "["; n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { print "\n]" }
' "$raw" > "$fresh"

if [ -f "$out" ]; then
	echo
	echo "ns/op vs committed $out:"
	awk -v allow="${BENCH_ALLOW_REGRESSION:-0}" '
	FNR == NR {
		# Parse the committed baseline: one object per line.
		if (match($0, /"name": "[^"]+"/)) {
			name = substr($0, RSTART + 9, RLENGTH - 10)
			if (match($0, /"ns_per_op": [0-9.e+]+/))
				base[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
		}
		next
	}
	{
		if (!match($0, /"name": "[^"]+"/)) next
		name = substr($0, RSTART + 9, RLENGTH - 10)
		if (!match($0, /"ns_per_op": [0-9.e+]+/)) next
		ns = substr($0, RSTART + 13, RLENGTH - 13) + 0
		if (!(name in base)) {
			printf "  %-55s %12.0f ns/op  (new, no baseline)\n", name, ns
			next
		}
		delta = (ns - base[name]) / base[name] * 100
		printf "  %-55s %12.0f ns/op  %+7.1f%%\n", name, ns, delta
		warm = (name ~ /dedup-cold|dedup-warm|respond-memo-warm|sequential-warm|sharded-warm|sparse-drift|structural-churn|TelemetryOverhead|TraceOverhead\/disabled/)
		if (warm && delta > 25) {
			printf "  FAIL: %s regressed %.1f%% (>25%% on a warm-round benchmark)\n", name, delta
			failed = 1
		} else if (delta > 10) {
			printf "  WARN: %s regressed %.1f%% (>10%%)\n", name, delta
		}
	}
	END {
		if (failed && allow != "1") {
			print "  benchmark regression: baseline left untouched (set BENCH_ALLOW_REGRESSION=1 to record anyway)"
			exit 1
		}
		if (failed)
			print "  BENCH_ALLOW_REGRESSION=1: recording regressed numbers"
	}
	' "$out" "$fresh"
fi

mv "$fresh" "$out"
trap 'rm -f "$raw"' EXIT
echo "wrote $out"
