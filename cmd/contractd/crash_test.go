package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dyncontract/internal/server"
)

// TestMain doubles as the contractd entrypoint for crash tests: when
// re-exec'd with CONTRACTD_TEST_EXEC=1 the test binary IS contractd, so
// the SIGKILL harness runs the real process lifecycle — flags, journal
// open, recovery, listen — in a process the test can kill -9.
func TestMain(m *testing.M) {
	if os.Getenv("CONTRACTD_TEST_EXEC") == "1" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "contractd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

var listenRE = regexp.MustCompile(`listening on (http://[0-9.:]+)`)

// contractdProc is one re-exec'd contractd child.
type contractdProc struct {
	cmd *exec.Cmd
	// base is the child's HTTP root, parsed from its listen log line.
	base string
	mu   sync.Mutex
	log  bytes.Buffer
}

// output snapshots the child's combined log so far.
func (p *contractdProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.log.String()
}

// startContractd re-execs the test binary as contractd with the given
// flags and waits until it logs its listen address — which, with a
// journal configured, is strictly after recovery finished.
func startContractd(t *testing.T, args ...string) *contractdProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	p := &contractdProc{cmd: exec.Command(exe, args...)}
	p.cmd.Env = append(os.Environ(), "CONTRACTD_TEST_EXEC=1")
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = &stderrWriter{p: p}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.cmd.Process.Kill(); p.cmd.Wait() })

	ready := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := stdout.Read(buf)
			if n > 0 {
				p.mu.Lock()
				p.log.Write(buf[:n])
				s := p.log.String()
				p.mu.Unlock()
				if m := listenRE.FindStringSubmatch(s); m != nil {
					select {
					case ready <- m[1]:
					default:
					}
				}
			}
			if err != nil {
				return
			}
		}
	}()
	select {
	case p.base = <-ready:
	case <-time.After(15 * time.Second):
		t.Fatalf("contractd never became ready; log:\n%s", p.output())
	}
	return p
}

// stderrWriter folds the child's stderr into the same log buffer.
type stderrWriter struct{ p *contractdProc }

func (w *stderrWriter) Write(b []byte) (int, error) {
	w.p.mu.Lock()
	defer w.p.mu.Unlock()
	return w.p.log.Write(b)
}

// crashCreatePayload is a four-agent mixed-class population, matching
// the server package's canonical fixture.
const crashCreatePayload = `{"agents":[
	{"id":"h1","class":"honest","psi":{"r2":-0.25,"r1":2},"beta":1,"weight":1},
	{"id":"h2","class":"honest","psi":{"r2":-0.25,"r1":2},"beta":1,"weight":1},
	{"id":"m1","class":"malicious","psi":{"r2":-0.25,"r1":2},"beta":1,"omega":0.5,"weight":0.8,"malice":0.9},
	{"id":"c1","class":"community","psi":{"r2":-0.25,"r1":2},"beta":1,"omega":0.3,"size":3,"weight":0.5}
],"m":10,"delta":0.2,"mu":1}`

// postJSON issues one POST and returns the status and body; a transport
// error returns status 0 (the kill landed mid-request).
func postJSON(client *http.Client, url, body string) (int, []byte) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	resp, err := client.Post(url, "application/json", rd)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil
	}
	return resp.StatusCode, raw
}

// TestCrashRecoveryKill9 is the end-to-end durability harness: contractd
// runs with an fsync journal, a client drives mixed round/drift traffic,
// the process is killed with SIGKILL at a randomized point mid-traffic,
// and a restart over the same journal directory must serve every
// acknowledged round byte-identical — an fsync'd acknowledgement is a
// durability contract, not a best effort.
func TestCrashRecoveryKill9(t *testing.T) {
	jdir := t.TempDir()
	flags := []string{
		"-listen", "127.0.0.1:0",
		"-journal-dir", jdir,
		"-journal-sync", "fsync",
		"-snapshot-every", "5",
	}
	p1 := startContractd(t, flags...)
	client := &http.Client{Timeout: 10 * time.Second}

	code, raw := postJSON(client, p1.base+"/v1/sessions", crashCreatePayload)
	if code != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", code, raw)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &created); err != nil {
		t.Fatal(err)
	}
	id := created.ID

	// Drive traffic until the kill lands: rounds with full outcomes, a
	// weight drift every fourth command. Every 200 round response the
	// client fully reads is an acknowledged, fsync-durable round.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	killAfter := time.Duration(20+rng.Intn(120)) * time.Millisecond
	t.Logf("killing contractd %v after traffic starts", killAfter)
	killed := make(chan struct{})
	go func() {
		time.Sleep(killAfter)
		p1.cmd.Process.Kill()
		close(killed)
	}()

	var acked [][]byte
	for i := 0; ; i++ {
		var code int
		var raw []byte
		if i%4 == 3 {
			drift := fmt.Sprintf(`{"weights":{"h1":%g}}`, 1+0.01*float64(i%7))
			code, _ = postJSON(client, p1.base+"/v1/sessions/"+id+"/drift", drift)
		} else {
			code, raw = postJSON(client, p1.base+"/v1/sessions/"+id+"/rounds", `{"include_outcomes":true}`)
			if code == http.StatusOK {
				acked = append(acked, bytes.TrimSpace(raw))
			}
		}
		if code == 0 {
			break // the kill landed mid-request
		}
		if code != http.StatusOK {
			t.Fatalf("command %d: status %d", i, code)
		}
	}
	<-killed
	p1.cmd.Wait()
	if len(acked) == 0 {
		t.Skip("kill landed before any round was acknowledged; nothing to verify")
	}
	t.Logf("%d rounds acknowledged before SIGKILL", len(acked))

	// Restart over the same journal directory; readiness implies the
	// recovery pass completed.
	p2 := startContractd(t, flags...)
	if out := p2.output(); !strings.Contains(out, "session recovered") {
		t.Errorf("restart log missing recovery line:\n%s", out)
	}

	resp, err := client.Get(p2.base + "/v1/sessions/" + id + "/rounds")
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("list rounds after restart: status %d, err %v", resp.StatusCode, err)
	}
	var ledger []json.RawMessage
	if err := json.Unmarshal(raw, &ledger); err != nil {
		t.Fatal(err)
	}
	// Write-ahead means the log is a superset of the acknowledged
	// history: every acked round comes back byte-identical, and at most
	// the in-flight command (journaled, response lost) rides behind.
	if len(ledger) < len(acked) {
		t.Fatalf("recovered %d rounds, %d were acknowledged", len(ledger), len(acked))
	}
	if len(ledger) > len(acked)+1 {
		t.Fatalf("recovered %d rounds with only %d acknowledged (+1 in-flight allowed)", len(ledger), len(acked))
	}
	for i, want := range acked {
		var got server.RoundJSON
		if err := json.Unmarshal(ledger[i], &got); err != nil {
			t.Fatal(err)
		}
		var ref server.RoundJSON
		if err := json.Unmarshal(want, &ref); err != nil {
			t.Fatal(err)
		}
		norm := func(v server.RoundJSON) string {
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		if norm(got) != norm(ref) {
			t.Fatalf("round %d differs after crash recovery:\n got %s\nwant %s", i, ledger[i], want)
		}
	}

	// The recovered session is live: it keeps advancing rounds.
	code, _ = postJSON(client, p2.base+"/v1/sessions/"+id+"/rounds", "")
	if code != http.StatusOK {
		t.Fatalf("round after recovery: status %d", code)
	}
}
