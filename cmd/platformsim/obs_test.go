package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
)

// TestRunMetricsJSONL pins the acceptance criterion "-metrics out.jsonl
// emits one valid JSON object per line": every line must round-trip
// through encoding/json, and the run flushes once per simulated round.
func TestRunMetricsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var buf bytes.Buffer
	const rounds = 3
	err := run([]string{
		"-policies", "dynamic", "-rounds", strconv.Itoa(rounds),
		"-perclass", "25", "-metrics", path,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var rec telemetry.JSONLRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not a valid JSON object: %v\n%s", lines, err, sc.Text())
		}
		if rec.TS == "" {
			t.Errorf("line %d has no timestamp", lines)
		}
		if got := rec.Counters[engine.MetricRounds]; got != uint64(lines) {
			t.Errorf("line %d: %s = %d, want %d (one flush per round)",
				lines, engine.MetricRounds, got, lines)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != rounds {
		t.Fatalf("metrics file has %d lines, want %d (one per round)", lines, rounds)
	}
}

// TestRunMetricsListen pins the acceptance criterion "platformsim
// -metrics-listen :0 serves parseable Prometheus text at /metrics": the
// test hook scrapes the live endpoint after the simulation populated the
// registry, and every sample line must parse.
func TestRunMetricsListen(t *testing.T) {
	var scraped string
	testHookServe = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Errorf("scrape: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /metrics: %s", resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("read body: %v", err)
			return
		}
		scraped = string(body)
	}
	defer func() { testHookServe = nil }()

	var buf bytes.Buffer
	err := run([]string{
		"-policies", "dynamic", "-rounds", "2", "-perclass", "25",
		"-metrics-listen", "127.0.0.1:0", "-cachestats",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "metrics: serving http://") {
		t.Error("listen address not announced")
	}
	if scraped == "" {
		t.Fatal("test hook never scraped the endpoint")
	}
	for _, want := range []string{
		"# TYPE " + engine.MetricRounds + " counter",
		engine.MetricRounds + " 2\n",
		engine.MetricRoundSeconds + `_bucket{le="+Inf"} 2`,
		engine.MetricCacheHits,
	} {
		if !strings.Contains(scraped, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, scraped)
		}
	}
	// Line-by-line parse, the way a Prometheus scraper consumes it.
	for _, line := range strings.Split(strings.TrimRight(scraped, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("sample %q: bad value: %v", line, err)
		}
	}
}

// TestRunCacheStats pins the shared -cachestats output helper.
func TestRunCacheStats(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policies", "dynamic", "-rounds", "2", "-perclass", "25", "-cachestats"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "design cache:") {
		t.Errorf("-cachestats output missing cache line:\n%s", buf.String())
	}
}

// TestRunProfiles checks the -cpuprofile/-memprofile flags produce
// non-empty pprof files.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	err := run([]string{
		"-policies", "fixed", "-rounds", "1", "-perclass", "20",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s not written (err=%v)", p, err)
		}
	}
}
