package experiments

import (
	"fmt"

	"dyncontract/internal/stats"
	"dyncontract/internal/worker"
)

// RunFig7 regenerates Fig. 7: average effort level and average feedback for
// honest, non-collusive malicious (NCM), and collusive malicious (CM)
// workers. The paper's observation — effort levels are similar across the
// three classes while CM feedback is much higher (partners upvote each
// other) — is asserted in the notes.
func RunFig7(p *Pipeline, _ Params) (*Report, error) {
	rep := &Report{
		ID:     "fig7",
		Title:  "per-class average effort and feedback",
		Header: []string{"class", "workers", "avg-effort", "avg-feedback"},
	}
	type classRow struct {
		name  string
		class worker.Class
	}
	rows := []classRow{
		{"honest", worker.Honest},
		{"non-collusive-malicious", worker.NonCollusiveMalicious},
		{"collusive-malicious", worker.CollusiveMalicious},
	}
	means := make(map[worker.Class][2]float64, len(rows))
	for _, cr := range rows {
		efforts, feedbacks, err := p.ClassPoints(cr.class)
		if err != nil {
			return nil, err
		}
		if len(efforts) == 0 {
			return nil, fmt.Errorf("%w: class %v has no reviews", ErrPipeline, cr.class)
		}
		meanEffort, err := stats.Mean(efforts)
		if err != nil {
			return nil, err
		}
		meanFeedback, err := stats.Mean(feedbacks)
		if err != nil {
			return nil, err
		}
		means[cr.class] = [2]float64{meanEffort, meanFeedback}
		rep.Rows = append(rep.Rows, []string{
			cr.name, fmt.Sprintf("%d", classWorkerCount(p, cr.class)),
			f3(meanEffort), f3(meanFeedback),
		})
		rep.BarLabels = append(rep.BarLabels, cr.name+" feedback")
		rep.BarValues = append(rep.BarValues, meanFeedback)
	}
	cmFb := means[worker.CollusiveMalicious][1]
	hFb := means[worker.Honest][1]
	ncmFb := means[worker.NonCollusiveMalicious][1]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"CM feedback exceeds honest and NCM: %v (paper: collusive workers have much higher feedback)",
		cmFb > hFb && cmFb > ncmFb))
	hEff := means[worker.Honest][0]
	cmEff := means[worker.CollusiveMalicious][0]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"effort levels comparable across classes (honest %.2f vs CM %.2f): %v (paper: similar effort levels)",
		hEff, cmEff, cmEff < 2*hEff && hEff < 2*cmEff))
	return rep, nil
}

func classWorkerCount(p *Pipeline, class worker.Class) int {
	switch class {
	case worker.Honest:
		return len(p.HonestIDs)
	case worker.NonCollusiveMalicious:
		return len(p.NCMIDs)
	case worker.CollusiveMalicious:
		return len(p.CMIDs)
	default:
		return 0
	}
}
