package experiments

import (
	"errors"
	"testing"

	"dyncontract/internal/synth"
	"dyncontract/internal/trace"
)

// TestBuildPipelineNoMaliciousWorkers: a trace with only honest workers
// must fail cleanly (the per-class fitting needs all three classes), not
// panic or produce NaNs.
func TestBuildPipelineNoMaliciousWorkers(t *testing.T) {
	cfg := synth.SmallScale(1)
	cfg.NonCollusive = 0
	cfg.CommunitySizes = nil
	tr, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPipelineFromTrace(tr, 1); !errors.Is(err, ErrPipeline) {
		t.Fatalf("err = %v, want ErrPipeline", err)
	}
}

// TestBuildPipelineTinyTrace: a minimal trace whose classes have too few
// reviews for fitting must fail with the pipeline error, not crash.
func TestBuildPipelineTinyTrace(t *testing.T) {
	tr := &trace.Trace{
		Reviews: []trace.Review{
			{ID: "r1", WorkerID: "h1", ProductID: "p1", Score: 3, Length: 10, Upvotes: 1},
			{ID: "r2", WorkerID: "m1", ProductID: "p2", Score: 5, Length: 10, Upvotes: 1},
		},
		Workers: map[string]trace.Worker{
			"h1": {ID: "h1"},
			"m1": {ID: "m1", Malicious: true, TargetProducts: []string{"p2"}},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPipelineFromTrace(tr, 1); !errors.Is(err, ErrPipeline) {
		t.Fatalf("err = %v, want ErrPipeline", err)
	}
}

// TestBuildPipelineZeroUpvoteTrace: all-zero feedback gives a flat trend;
// the concave-increasing fit must be rejected through ErrPipeline.
func TestBuildPipelineZeroUpvoteTrace(t *testing.T) {
	cfg := synth.SmallScale(2)
	cfg.HonestShape = synth.ClassShape{A: 0.0001, B: 0, Noise: 0}
	cfg.MaliciousShape = synth.ClassShape{A: 0.0001, B: 0, Noise: 0}
	cfg.UpvoteProb = 0
	tr, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = BuildPipelineFromTrace(tr, 2)
	if err == nil {
		// A degenerate fit may still squeak through with epsilon slopes;
		// what matters is no panic and a decisive outcome either way.
		t.Log("degenerate trace produced a (barely) valid fit")
		return
	}
	if !errors.Is(err, ErrPipeline) {
		t.Fatalf("err = %v, want ErrPipeline", err)
	}
}

// TestPipelineWorkerWeightUnknownWorker: weights for unknown IDs error.
func TestPipelineWorkerWeightUnknownWorker(t *testing.T) {
	p := testPipeline(t)
	if _, err := p.WorkerWeight("no-such-worker", DefaultParams()); !errors.Is(err, ErrPipeline) {
		t.Fatalf("err = %v, want ErrPipeline", err)
	}
}

// TestPipelineCommunityAgentOutOfRange: invalid community indexes error.
func TestPipelineCommunityAgentOutOfRange(t *testing.T) {
	p := testPipeline(t)
	part, err := p.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CommunityAgent(-1, DefaultParams(), part); !errors.Is(err, ErrPipeline) {
		t.Error("negative index accepted")
	}
	if _, err := p.CommunityAgent(len(p.Communities), DefaultParams(), part); !errors.Is(err, ErrPipeline) {
		t.Error("out-of-range index accepted")
	}
}

// TestPipelineClassPointsUnknownClass: an invalid class errors.
func TestPipelineClassPointsUnknownClass(t *testing.T) {
	p := testPipeline(t)
	if _, _, err := p.ClassPoints(0); !errors.Is(err, ErrPipeline) {
		t.Fatalf("err = %v, want ErrPipeline", err)
	}
}
