// Package requester implements the task requester's side of the model:
// the per-worker feedback weights w_i of Eq. (5) and the per-round utility
// of Eq. (7).
//
// The weight trades off a worker's review accuracy against the estimated
// probability of malice and the size of the worker's collusive community:
//
//	w_i = ρ/|l_i − l̄| − κ·e_i^mal − γ·A_i
//
// where l_i is the worker's review score, l̄ the experts' average ("ground
// truth"), e_i^mal the estimated malice probability, and A_i the number of
// collusive partners. Following footnote 1, a biased-but-accurate malicious
// worker can still carry positive weight — the basis for Fig. 8(c)'s result
// that contracting beats wholesale exclusion.
package requester

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParams is returned when weight parameters fail validation.
var ErrBadParams = errors.New("requester: invalid parameters")

// WeightParams holds the coefficients of Eq. (5).
type WeightParams struct {
	// Rho is the accuracy coefficient ρ.
	Rho float64
	// Kappa is the malice-probability penalty κ.
	Kappa float64
	// Gamma is the per-partner collusion penalty γ.
	Gamma float64
	// DistFloor floors the accuracy distance |l_i − l̄| to keep the weight
	// finite for perfectly accurate reviews. The paper leaves this
	// implicit; one half rating notch (0.5 stars) is the natural choice.
	DistFloor float64
}

// DefaultWeightParams returns the paper's evaluation setting
// (§IV-C / Fig. 6): ρ = 1, κ = γ = 0.1, with a half-star distance floor.
func DefaultWeightParams() WeightParams {
	return WeightParams{Rho: 1, Kappa: 0.1, Gamma: 0.1, DistFloor: 0.5}
}

// Validate checks the parameters.
func (p WeightParams) Validate() error {
	for name, v := range map[string]float64{
		"rho": p.Rho, "kappa": p.Kappa, "gamma": p.Gamma, "distFloor": p.DistFloor,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%s=%v must be finite and non-negative: %w", name, v, ErrBadParams)
		}
	}
	if p.Rho == 0 {
		return fmt.Errorf("rho must be positive: %w", ErrBadParams)
	}
	if p.DistFloor == 0 {
		return fmt.Errorf("distFloor must be positive: %w", ErrBadParams)
	}
	return nil
}

// WorkerSignal is the per-worker evidence the requester weighs.
type WorkerSignal struct {
	// ReviewScore is the worker's review l_i (e.g. star rating).
	ReviewScore float64
	// ExpertScore is the experts' average l̄ for the same task.
	ExpertScore float64
	// MaliceProb is the estimated probability e_i^mal ∈ [0, 1] that the
	// worker is malicious.
	MaliceProb float64
	// Partners is A_i, the number of collusive partners (0 for honest and
	// non-collusive workers).
	Partners int
}

// Validate checks the signal.
func (s WorkerSignal) Validate() error {
	if math.IsNaN(s.ReviewScore) || math.IsInf(s.ReviewScore, 0) ||
		math.IsNaN(s.ExpertScore) || math.IsInf(s.ExpertScore, 0) {
		return fmt.Errorf("non-finite scores (%v, %v): %w", s.ReviewScore, s.ExpertScore, ErrBadParams)
	}
	if s.MaliceProb < 0 || s.MaliceProb > 1 || math.IsNaN(s.MaliceProb) {
		return fmt.Errorf("malice probability %v outside [0,1]: %w", s.MaliceProb, ErrBadParams)
	}
	if s.Partners < 0 {
		return fmt.Errorf("negative partner count %d: %w", s.Partners, ErrBadParams)
	}
	return nil
}

// Weight computes w_i per Eq. (5).
func Weight(p WeightParams, s WorkerSignal) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	dist := math.Abs(s.ReviewScore - s.ExpertScore)
	if dist < p.DistFloor {
		dist = p.DistFloor
	}
	return p.Rho/dist - p.Kappa*s.MaliceProb - p.Gamma*float64(s.Partners), nil
}

// RoundOutcome is one worker's contribution within a round.
type RoundOutcome struct {
	// Weight is the w_i used for this worker this round.
	Weight float64
	// Feedback is q_i^t, the worker's realized feedback.
	Feedback float64
	// Compensation is c_i^t, the payment made.
	Compensation float64
}

// Utility computes the requester's round utility per Eq. (7):
// Σ w_i·q_i − μ·Σ c_i.
func Utility(mu float64, outcomes []RoundOutcome) (float64, error) {
	if !(mu > 0) || math.IsInf(mu, 0) {
		return 0, fmt.Errorf("mu=%v must be positive and finite: %w", mu, ErrBadParams)
	}
	var benefit, cost float64
	for i, o := range outcomes {
		if math.IsNaN(o.Weight) || math.IsNaN(o.Feedback) || math.IsNaN(o.Compensation) {
			return 0, fmt.Errorf("outcome %d has NaN fields: %w", i, ErrBadParams)
		}
		benefit += o.Weight * o.Feedback
		cost += o.Compensation
	}
	return benefit - mu*cost, nil
}
