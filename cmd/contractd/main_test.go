package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeAndDrain boots contractd on an ephemeral port, exercises the
// API end to end, triggers the SIGTERM path, and checks the exit report.
func TestServeAndDrain(t *testing.T) {
	ready := make(chan struct {
		addr     string
		shutdown func()
	}, 1)
	testHookReady = func(addr string, shutdown func()) {
		ready <- struct {
			addr     string
			shutdown func()
		}{addr, shutdown}
	}
	defer func() { testHookReady = nil }()

	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-listen", "127.0.0.1:0", "-drain-timeout", "5s", "-trace"}, &out)
	}()
	var boot struct {
		addr     string
		shutdown func()
	}
	select {
	case boot = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + boot.addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	create := `{"agents":[{"id":"h1","class":"honest","psi":{"r2":-0.25,"r1":2},"beta":1,"weight":1}],"m":10,"delta":0.2,"mu":1}`
	resp, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader(create))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session = %d", resp.StatusCode)
	}

	resp, err = http.Post(fmt.Sprintf("%s/v1/sessions/%s/rounds", base, created.ID), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance round = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}

	// -trace serves the recorded spans at /debug/traces.
	resp, err = http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	traces, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces = %d", resp.StatusCode)
	}
	if !bytes.Contains(traces, []byte("engine.round")) {
		t.Errorf("traces missing engine.round span: %s", traces)
	}

	boot.shutdown()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never exited after shutdown")
	}
	// Lifecycle and request logs flow through slog; the request line for
	// the advanced round carries its route, status, and trace ID.
	for _, want := range []string{
		"listening on", "draining", "http rounds_advance", "bye",
		"msg=request", "route=rounds_advance", "status=200", "trace=",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
