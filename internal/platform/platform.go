// Package platform simulates the repeated crowdsourcing marketplace of
// §II: a requester posts per-worker contracts each round, workers (honest,
// malicious, and collusive communities acting as meta-workers) best-respond
// with effort levels, feedback realizes, and the requester's utility
// accrues round by round.
//
// The round loop itself lives in internal/engine; this package is the
// classic ledger-returning adapter over it, kept as the stable entry point
// for examples, experiments, and tests. Pricing strategies are pluggable
// through the Policy interface; the paper's dynamic contract design is
// DynamicPolicy, and the comparison baselines of Fig. 8(c) live in
// internal/baseline.
package platform

import (
	"context"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// ErrBadPopulation is returned when a population fails validation.
var ErrBadPopulation = engine.ErrBadPopulation

// Core marketplace types are defined in internal/engine; the aliases keep
// every existing caller (and the Policy implementations spread across
// internal/baseline, internal/budget, internal/adversary, …) compiling
// unchanged while the engine owns the loop.
type (
	// Population is the fixed cast of a simulation.
	Population = engine.Population
	// Policy produces one round's contracts.
	Policy = engine.Policy
	// AgentOutcome is one agent's realized round outcome.
	AgentOutcome = engine.AgentOutcome
	// Round aggregates one simulated round.
	Round = engine.Round
)

// Options tunes the simulation.
type Options struct {
	// Drift, when non-nil, runs before each round and may mutate the
	// population (behaviour drift, weight re-estimation, …).
	Drift func(round int, pop *Population)
	// Responder, when non-nil, chooses each agent's effort for the round
	// instead of the exact myopic best response — the hook strategic
	// adversaries (internal/adversary) plug into. The returned effort is
	// clamped to [0, min(mδ, apex)].
	Responder func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error)
	// Observer, when non-nil, receives each completed round before the
	// next begins (for online reputation tracking).
	Observer func(round Round)
	// Metrics, when non-nil, instruments the underlying engine run
	// (per-stage timings, per-round ledger gauges; see engine.Config).
	// telemetry.Nop disables collection; the ledger is identical either
	// way.
	Metrics *telemetry.Registry
}

// Simulate runs the marketplace for the given number of rounds under the
// policy and returns the per-round ledger. It is a thin adapter over
// engine.RunLedger; callers that want streaming events, early stopping, or
// an explicit design cache should use internal/engine directly.
func Simulate(ctx context.Context, pop *Population, pol Policy, rounds int, opts Options) ([]Round, error) {
	cfg := engine.Config{
		Policy:    pol,
		Rounds:    rounds,
		Drift:     opts.Drift,
		Responder: engine.Responder(opts.Responder),
		Metrics:   opts.Metrics,
	}
	if opts.Observer != nil {
		observer := opts.Observer
		cfg.Observers = []engine.Observer{engine.Hooks{
			RoundEnd: func(round Round) error {
				observer(round)
				return nil
			},
		}}
	}
	return engine.RunLedger(ctx, pop, cfg)
}

// TotalUtility sums the requester's utility over a ledger. Nil and empty
// ledgers total 0, and non-finite round utilities are skipped, so the
// total is always NaN-free.
func TotalUtility(ledger []Round) float64 {
	return engine.TotalUtility(ledger)
}

// DynamicPolicy is the paper's strategy: each round it designs a
// near-optimal contract per agent with core.Design, solving the decomposed
// subproblems in parallel. Agents sharing a design fingerprint share one
// solve (engine.Designer), and attaching a cache (UseCache, or
// engine.Config.Cache) makes repeated rounds on a stable population nearly
// free.
type DynamicPolicy struct {
	// Parallelism caps the solver pool; 0 means GOMAXPROCS.
	Parallelism int

	designer engine.Designer
}

var (
	_ Policy                       = (*DynamicPolicy)(nil)
	_ engine.ShardPolicy           = (*DynamicPolicy)(nil)
	_ engine.FingerprintPurePolicy = (*DynamicPolicy)(nil)
	_ engine.CacheUser             = (*DynamicPolicy)(nil)
	_ engine.MetricsUser           = (*DynamicPolicy)(nil)
	_ engine.ShardBatchReporter    = (*DynamicPolicy)(nil)
)

// Name implements Policy.
func (p *DynamicPolicy) Name() string { return "dynamic-contract" }

// UseCache implements engine.CacheUser: subsequent rounds dedup designs
// against the cache.
func (p *DynamicPolicy) UseCache(c *engine.Cache) { p.designer.Cache = c }

// UseMetrics implements engine.MetricsUser: the designer forwards the
// registry to the solver fan-out (dyncontract_solver_* metrics).
func (p *DynamicPolicy) UseMetrics(reg *telemetry.Registry) { p.designer.Metrics = reg }

// Contracts implements Policy.
func (p *DynamicPolicy) Contracts(ctx context.Context, pop *Population) (map[string]*contract.PiecewiseLinear, error) {
	p.designer.Parallelism = p.Parallelism
	return p.designer.Contracts(ctx, pop, pop.Agents)
}

// ShardContracts implements engine.ShardPolicy: under engine.Config.Shards
// each shard designs through its own engine.ShardDesigner, backed by a
// lock-free segment of the shared design cache, and a warm shard — same
// population view, same cached designs — reports changed = false so the
// engine can skip its respond stage entirely.
func (p *DynamicPolicy) ShardContracts(ctx context.Context, pop *Population, sh *engine.Shard, dst []*contract.PiecewiseLinear) (bool, error) {
	return p.designer.Shard(sh.Index).Contracts(ctx, pop, sh, dst)
}

// FingerprintPure implements engine.FingerprintPurePolicy: every contract
// this policy serves is resolved purely through the agent's design
// fingerprint (engine.Designer dedups and caches by fingerprint), so the
// engine may patch sparsely drifted agents straight from the design
// cache instead of re-running the shard cold.
func (p *DynamicPolicy) FingerprintPure() {}

// ShardBatchStats implements engine.ShardBatchReporter: the size of the
// shard designer's last design batch (distinct cache-missing
// fingerprints; 0 on a warm round) and the cumulative use count of its
// retained solve scratch.
func (p *DynamicPolicy) ShardBatchStats(shard int) (int, uint64) {
	return p.designer.Shard(shard).BatchStats()
}
