package engine_test

import (
	"context"
	"strconv"
	"testing"

	"dyncontract/internal/engine"
	"dyncontract/internal/spans"
)

// attrMap flattens a span's attributes for assertion.
func attrMap(sd spans.SpanData) map[string]string {
	m := make(map[string]string, len(sd.Attrs))
	for _, a := range sd.Attrs {
		m[a.Key] = a.Value
	}
	return m
}

// TestEngineRoundSpans pins the traced round's span tree on the sharded
// route: a caller's root span gains one engine.round child per round,
// each with the five pipeline-stage children, the design and respond
// stages each with one child span per shard, and the per-shard spans
// carrying shard index, cache/memo hit-miss counts, and the round's
// drift classification.
func TestEngineRoundSpans(t *testing.T) {
	pop := archetypePopulation(t, 24)
	rec := spans.NewRecorder(8, 4)
	tracer := spans.New(spans.Config{Sample: 1, Seed: 5, Recorder: rec})

	const shards = 4
	eng, err := engine.New(pop, engine.Config{
		Policy: &shardDesignPolicy{},
		Rounds: 2,
		Shards: shards,
		Cache:  engine.NewCache(),
		Memo:   engine.NewRespondMemo(),
	})
	if err != nil {
		t.Fatal(err)
	}

	root := tracer.Root("test.run")
	ctx := spans.ContextWith(context.Background(), root)
	if err := eng.Run(ctx); err != nil {
		t.Fatal(err)
	}
	root.End()

	tr, ok := rec.Lookup(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	rootSpan, ok := tr.Root()
	if !ok {
		t.Fatal("no root span")
	}

	byParent := make(map[spans.SpanID][]spans.SpanData)
	for _, sd := range tr.Spans {
		byParent[sd.Parent] = append(byParent[sd.Parent], sd)
	}
	rounds := byParent[rootSpan.ID]
	if len(rounds) != 2 {
		t.Fatalf("got %d engine.round spans, want 2", len(rounds))
	}
	wantStages := []string{
		"engine.stage.design", "engine.stage.contracts", "engine.stage.respond",
		"engine.stage.settle", "engine.stage.observe",
	}
	for ri, round := range rounds {
		if round.Name != "engine.round" {
			t.Fatalf("round span name = %q", round.Name)
		}
		attrs := attrMap(round)
		if attrs["round"] != strconv.Itoa(ri) {
			t.Errorf("round %d: round attr = %q", ri, attrs["round"])
		}
		if attrs["agents"] != "24" || attrs["shards"] != strconv.Itoa(shards) {
			t.Errorf("round %d: agents/shards attrs = %q/%q", ri, attrs["agents"], attrs["shards"])
		}
		// Round 0 has no drift hook and no declared scope: viewKeep
		// declared, but the first round's view build escalates to
		// viewFull; round 1 is fully warm and stays viewKeep.
		wantDrift := "viewFull"
		if ri == 1 {
			wantDrift = "viewKeep"
		}
		if attrs["drift"] != wantDrift {
			t.Errorf("round %d: drift attr = %q, want %q", ri, attrs["drift"], wantDrift)
		}

		stages := byParent[round.ID]
		if len(stages) != len(wantStages) {
			t.Fatalf("round %d: got %d stage spans, want %d", ri, len(stages), len(wantStages))
		}
		stageByName := make(map[string]spans.SpanData, len(stages))
		for _, sg := range stages {
			stageByName[sg.Name] = sg
		}
		for _, name := range wantStages {
			if _, ok := stageByName[name]; !ok {
				t.Fatalf("round %d: missing stage span %q (have %v)", ri, name, stages)
			}
		}

		design := byParent[stageByName["engine.stage.design"].ID]
		if len(design) != shards {
			t.Fatalf("round %d: got %d shard design spans, want %d", ri, len(design), shards)
		}
		seen := make(map[string]bool)
		var totalAgents, hits, misses int
		for _, sd := range design {
			if sd.Name != "engine.shard.design" {
				t.Fatalf("shard design span name = %q", sd.Name)
			}
			a := attrMap(sd)
			seen[a["shard"]] = true
			n, _ := strconv.Atoi(a["agents"])
			totalAgents += n
			h, _ := strconv.Atoi(a["cache.hits"])
			m, _ := strconv.Atoi(a["cache.misses"])
			hits += h
			misses += m
			if a["drift"] != wantDrift {
				t.Errorf("round %d shard %s: drift = %q, want %q", ri, a["shard"], a["drift"], wantDrift)
			}
		}
		if len(seen) != shards || totalAgents != 24 {
			t.Errorf("round %d: shard design spans cover %d shards / %d agents", ri, len(seen), totalAgents)
		}
		if ri == 0 && hits+misses == 0 {
			t.Error("cold round recorded no cache traffic on its shard spans")
		}

		respond := byParent[stageByName["engine.stage.respond"].ID]
		if ri == 0 {
			// Cold round: every shard solves.
			if len(respond) != shards {
				t.Fatalf("round 0: got %d shard respond spans, want %d", len(respond), shards)
			}
			for _, sd := range respond {
				a := attrMap(sd)
				if sd.Name != "engine.shard.respond" || a["route"] != "solve" {
					t.Fatalf("round 0 respond span = %q route %q", sd.Name, a["route"])
				}
			}
		} else if len(respond) != 0 {
			// Warm round: retained outcomes, no shard responds.
			t.Fatalf("round 1: got %d shard respond spans, want 0 (warm skip)", len(respond))
		}
	}
}

// TestEngineUntracedContext pins that a bare context yields no spans at
// all — the disabled path records nothing and LastDriftClass still
// reports the round classification.
func TestEngineUntracedContext(t *testing.T) {
	pop := archetypePopulation(t, 6)
	rec := spans.NewRecorder(4, 2)
	eng, err := engine.New(pop, engine.Config{Policy: &designPolicy{}, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := rec.Completed(); got != 0 {
		t.Fatalf("untraced run recorded %d traces", got)
	}
	declared, applied := eng.LastDriftClass()
	if declared != "viewKeep" || applied != "viewFull" {
		t.Fatalf("LastDriftClass = (%q, %q), want (viewKeep, viewFull) for a first round", declared, applied)
	}
}
