package requester

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultWeightParamsValid(t *testing.T) {
	if err := DefaultWeightParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestWeightParamsValidate(t *testing.T) {
	bad := []WeightParams{
		{Rho: 0, Kappa: 0.1, Gamma: 0.1, DistFloor: 0.5},
		{Rho: 1, Kappa: -0.1, Gamma: 0.1, DistFloor: 0.5},
		{Rho: 1, Kappa: 0.1, Gamma: math.NaN(), DistFloor: 0.5},
		{Rho: 1, Kappa: 0.1, Gamma: 0.1, DistFloor: 0},
		{Rho: math.Inf(1), Kappa: 0.1, Gamma: 0.1, DistFloor: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("bad params %d: err = %v, want ErrBadParams", i, err)
		}
	}
}

func TestWorkerSignalValidate(t *testing.T) {
	ok := WorkerSignal{ReviewScore: 4, ExpertScore: 3.5, MaliceProb: 0.2, Partners: 3}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid signal rejected: %v", err)
	}
	bad := []WorkerSignal{
		{ReviewScore: math.NaN(), ExpertScore: 3},
		{ReviewScore: 3, ExpertScore: math.Inf(1)},
		{ReviewScore: 3, ExpertScore: 3, MaliceProb: -0.1},
		{ReviewScore: 3, ExpertScore: 3, MaliceProb: 1.1},
		{ReviewScore: 3, ExpertScore: 3, Partners: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("bad signal %d: err = %v, want ErrBadParams", i, err)
		}
	}
}

func TestWeightAccurateHonest(t *testing.T) {
	p := DefaultWeightParams()
	// Perfectly accurate honest worker: distance floored at 0.5, so
	// w = 1/0.5 = 2.
	w, err := Weight(p, WorkerSignal{ReviewScore: 4, ExpertScore: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("w = %v, want 2", w)
	}
}

func TestWeightMaliciousPenalty(t *testing.T) {
	p := DefaultWeightParams()
	honest, _ := Weight(p, WorkerSignal{ReviewScore: 4, ExpertScore: 3})
	ncm, _ := Weight(p, WorkerSignal{ReviewScore: 4, ExpertScore: 3, MaliceProb: 1})
	cm, _ := Weight(p, WorkerSignal{ReviewScore: 4, ExpertScore: 3, MaliceProb: 1, Partners: 4})
	if !(honest > ncm && ncm > cm) {
		t.Errorf("want honest > ncm > cm, got %v, %v, %v", honest, ncm, cm)
	}
	if math.Abs(honest-ncm-0.1) > 1e-12 {
		t.Errorf("malice penalty = %v, want 0.1", honest-ncm)
	}
	if math.Abs(ncm-cm-0.4) > 1e-12 {
		t.Errorf("partner penalty = %v, want 0.4", ncm-cm)
	}
}

func TestWeightCanGoNegative(t *testing.T) {
	// A wildly inaccurate collusive worker has weight near zero or below:
	// the "automatic exclusion" mechanism behind Fig 8(c).
	p := DefaultWeightParams()
	w, err := Weight(p, WorkerSignal{ReviewScore: 5, ExpertScore: 1, MaliceProb: 1, Partners: 5})
	if err != nil {
		t.Fatal(err)
	}
	if w >= 0 {
		t.Errorf("w = %v, want negative", w)
	}
}

func TestWeightPropagatesValidation(t *testing.T) {
	if _, err := Weight(WeightParams{}, WorkerSignal{}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Weight(DefaultWeightParams(), WorkerSignal{MaliceProb: 2}); err == nil {
		t.Error("invalid signal accepted")
	}
}

func TestUtility(t *testing.T) {
	outcomes := []RoundOutcome{
		{Weight: 2, Feedback: 10, Compensation: 3},
		{Weight: -1, Feedback: 5, Compensation: 1},
	}
	u, err := Utility(2, outcomes)
	if err != nil {
		t.Fatal(err)
	}
	want := (2*10 - 1*5) - 2*(3+1)
	if u != float64(want) {
		t.Errorf("Utility = %v, want %v", u, want)
	}
}

func TestUtilityEmpty(t *testing.T) {
	u, err := Utility(1, nil)
	if err != nil || u != 0 {
		t.Errorf("Utility(empty) = %v, %v; want 0, nil", u, err)
	}
}

func TestUtilityErrors(t *testing.T) {
	if _, err := Utility(0, nil); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := Utility(1, []RoundOutcome{{Weight: math.NaN()}}); err == nil {
		t.Error("NaN outcome accepted")
	}
}

// Property: weight is non-increasing in distance, malice probability, and
// partner count.
func TestWeightMonotoneProperty(t *testing.T) {
	p := DefaultWeightParams()
	f := func(d1, d2, e1, e2 float64, a1, a2 uint8) bool {
		clamp01 := func(x float64) float64 { return math.Mod(math.Abs(x), 1) }
		dist1, dist2 := math.Abs(math.Mod(d1, 4)), math.Abs(math.Mod(d2, 4))
		if dist1 > dist2 {
			dist1, dist2 = dist2, dist1
		}
		w1, err1 := Weight(p, WorkerSignal{ReviewScore: dist1, ExpertScore: 0, MaliceProb: clamp01(e1)})
		w2, err2 := Weight(p, WorkerSignal{ReviewScore: dist2, ExpertScore: 0, MaliceProb: clamp01(e1)})
		if err1 != nil || err2 != nil || w1 < w2-1e-12 {
			return false
		}
		eLo, eHi := clamp01(e1), clamp01(e2)
		if eLo > eHi {
			eLo, eHi = eHi, eLo
		}
		w3, _ := Weight(p, WorkerSignal{ReviewScore: 1, ExpertScore: 0, MaliceProb: eLo})
		w4, _ := Weight(p, WorkerSignal{ReviewScore: 1, ExpertScore: 0, MaliceProb: eHi})
		if w3 < w4-1e-12 {
			return false
		}
		pLo, pHi := int(a1), int(a2)
		if pLo > pHi {
			pLo, pHi = pHi, pLo
		}
		w5, _ := Weight(p, WorkerSignal{ReviewScore: 1, ExpertScore: 0, Partners: pLo})
		w6, _ := Weight(p, WorkerSignal{ReviewScore: 1, ExpertScore: 0, Partners: pHi})
		return w5 >= w6-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
