package dyncontract

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dyncontract/internal/server"
)

// BenchmarkServerDesignBatch measures the serving layer end to end:
// concurrent clients posting design-only queries through the HTTP API,
// coalesced by the micro-batcher into shared engine passes against a warm
// design cache. Sub-benchmarks vary the client fan-in; cold solve cost is
// paid once before the timer starts.
//
// This benchmark rides the network stack (httptest over loopback), so it
// is intentionally excluded from bench.sh's warm-round regression bars —
// track it for trend, not for the ±25% gate.
func BenchmarkServerDesignBatch(b *testing.B) {
	for _, clients := range []int{1, 8, 32} {
		// Name deliberately avoids a trailing "-<digits>": bench.sh strips
		// that pattern as the GOMAXPROCS suffix when building JSON names.
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			srv := server.New(server.Config{BatchWindow: 500 * time.Microsecond, BatchMax: 64})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			psi := server.PsiSpec{R2: -0.25, R1: 2}
			create := server.CreateSessionRequest{
				Agents: []server.AgentSpec{
					{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
					{ID: "m1", Class: "malicious", Psi: psi, Beta: 1, Omega: 0.5, Weight: 0.8},
				},
				M: 20, Delta: 0.1, Mu: 1,
			}
			var created server.CreateSessionResponse
			post(b, ts, "/v1/sessions", create, &created, http.StatusCreated)

			// Warm the cache: every weight the loop will query, solved once.
			query := func(i int) server.DesignQueryRequest {
				return server.DesignQueryRequest{Agent: &server.AgentSpec{
					ID: "probe", Class: "honest", Psi: psi, Beta: 1,
					Weight: 0.5 + 0.25*float64(i%4),
				}}
			}
			path := "/v1/sessions/" + created.ID + "/design"
			for i := 0; i < 4; i++ {
				post(b, ts, path, query(i), nil, http.StatusOK)
			}

			b.ResetTimer()
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N / clients
			extra := b.N % clients
			for c := 0; c < clients; c++ {
				n := per
				if c < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						post(b, ts, path, query(i), nil, http.StatusOK)
					}
				}(n)
			}
			wg.Wait()
		})
	}
}

// post issues one JSON POST against the bench server and enforces the
// expected status.
func post(b *testing.B, ts *httptest.Server, path string, payload any, out any, want int) {
	b.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		b.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.Fatal(err)
		}
	} else {
		var sink json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&sink)
	}
}
