#!/bin/sh
# Serving-layer smoke test (`make smoke`, also a CI stage): builds
# contractd, loadgen, driftcheck, and tracecheck, starts the daemon with
# -trace and an fsync journal on a loopback port, waits for /healthz via
# `loadgen -healthcheck`, fires a short strict closed-loop burst (design
# queries, round advances, and sparse drift mutations) followed by a
# strict -churn burst (every round advance preceded by an all-agent
# fresh-weight drift, driving the batched cold design path) and a strict
# structural-churn burst (agents joining and leaving mid-session via
# -join-every / -leave-every), then exercises the durability contract:
# a -journal-check burst records every acknowledged round client-side,
# the daemon is killed with SIGKILL mid-life, restarted over the same
# journal directory, and a second -journal-check run must find every
# recorded round byte-identical in the recovered ledger before driving
# more load onto the same session. The driftcheck probe (a one-agent
# drift must report touched=1 and perturb only that agent's ledger row;
# a join/leave burst of five must splice exactly those rows in and out
# with every other row byte-identical) and the tracecheck probe (a round
# advanced under a known X-Request-Id must come back from /debug/traces
# as a parseable trace covering HTTP handler -> session queue -> engine
# round -> stages -> shards, in JSONL and Chrome formats) run against
# the recovered process, which then gets SIGTERM and must drain cleanly —
# exit 0 with its "bye" sign-off logged. Any 5xx during the bursts, a
# failed health probe, a round lost or changed across the kill, a drift
# leaking into untouched agents' rows, a missing or malformed trace, or
# an unclean shutdown fails the script.
#
# Override the port with SMOKE_PORT if 18473 is taken.
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d)
log="$work/contractd.log"
log2="$work/contractd-recovered.log"
pid=""
cleanup() {
	status=$?
	if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
		kill "$pid" 2>/dev/null || true
	fi
	if [ "$status" -ne 0 ]; then
		for f in "$log" "$log2"; do
			if [ -f "$f" ]; then
				echo "--- $f ---"
				cat "$f"
			fi
		done
	fi
	rm -rf "$work"
	exit "$status"
}
trap cleanup EXIT

echo "building contractd, loadgen, driftcheck, and tracecheck..."
go build -o "$work/contractd" ./cmd/contractd
go build -o "$work/loadgen" ./cmd/loadgen
go build -o "$work/driftcheck" ./scripts/driftcheck
go build -o "$work/tracecheck" ./scripts/tracecheck

addr="127.0.0.1:${SMOKE_PORT:-18473}"
jflags="-journal-dir $work/journal -journal-sync fsync -snapshot-every 16"
"$work/contractd" -listen "$addr" -drain-timeout 10s -trace $jflags >"$log" 2>&1 &
pid=$!

echo "waiting for http://$addr/healthz..."
"$work/loadgen" -addr "http://$addr" -healthcheck -healthcheck-timeout 10s

echo "running strict load burst..."
"$work/loadgen" -addr "http://$addr" -clients 4 -requests 25 -round-every 5 -drift-every 7 -drift-agents 2 -strict

echo "running strict churn burst (all-cold design rounds)..."
"$work/loadgen" -addr "http://$addr" -clients 2 -requests 20 -round-every 4 -churn -strict

echo "running strict structural-churn burst (joins and leaves)..."
"$work/loadgen" -addr "http://$addr" -clients 2 -requests 24 -round-every 6 -join-every 3 -leave-every 3 -strict

echo "running journal-check burst (recording acknowledged rounds)..."
"$work/loadgen" -addr "http://$addr" -clients 2 -requests 20 -round-every 2 -journal-check "$work/journal-check.json" -strict

echo "killing contractd with SIGKILL..."
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "restarting contractd over the same journal..."
"$work/contractd" -listen "$addr" -drain-timeout 10s -trace $jflags >"$log2" 2>&1 &
pid=$!

echo "waiting for http://$addr/healthz..."
"$work/loadgen" -addr "http://$addr" -healthcheck -healthcheck-timeout 10s

grep -q "msg=\"session recovered\"" "$log2" || {
	echo "smoke: restart log missing session recovery" >&2
	exit 1
}

echo "verifying recorded rounds against the recovered ledger..."
"$work/loadgen" -addr "http://$addr" -clients 2 -requests 10 -round-every 2 -journal-check "$work/journal-check.json" -strict

echo "running sparse-drift ledger probe..."
"$work/driftcheck" -addr "http://$addr"

echo "running trace coverage probe..."
"$work/tracecheck" -addr "http://$addr"

echo "sending SIGTERM..."
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "smoke: contractd did not exit within 10s of SIGTERM" >&2
		exit 1
	fi
	sleep 0.1
done
wait "$pid" || {
	echo "smoke: contractd exited non-zero" >&2
	exit 1
}
pid=""

grep -q "msg=bye" "$log2" || {
	echo "smoke: drain sign-off missing from log" >&2
	exit 1
}
echo "smoke: clean drain and crash recovery confirmed"
