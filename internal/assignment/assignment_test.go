package assignment

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidateErrors(t *testing.T) {
	cases := map[string][][]float64{
		"no workers": {},
		"no tasks":   {{}},
		"ragged":     {{1, 2}, {1}},
		"NaN":        {{1, math.NaN()}},
		"Inf":        {{math.Inf(1), 1}},
	}
	for name, m := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Greedy(m); !errors.Is(err, ErrBadMatrix) {
				t.Errorf("Greedy err = %v, want ErrBadMatrix", err)
			}
			if _, err := Optimal(m); !errors.Is(err, ErrBadMatrix) {
				t.Errorf("Optimal err = %v, want ErrBadMatrix", err)
			}
		})
	}
}

func TestOptimalKnownMatrix(t *testing.T) {
	// Product matrix: the maximum matching is the main diagonal,
	// 1 + 4 + 9 = 14 (verified by enumeration of all 6 permutations).
	value := [][]float64{
		{1, 2, 3},
		{2, 4, 6},
		{3, 6, 9},
	}
	res, err := Optimal(value)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalValue != 14 {
		t.Errorf("TotalValue = %v, want 14 (assignment %v)", res.TotalValue, res.TaskOf)
	}
	if truth := bruteForce(value); res.TotalValue != truth {
		t.Errorf("TotalValue = %v, brute force says %v", res.TotalValue, truth)
	}
}

func TestGreedySuboptimalCase(t *testing.T) {
	// Greedy grabs 9 (w0→t0) and is then stuck with 1 (w1→t1) = 10;
	// optimal takes 8 + 7 = 15.
	value := [][]float64{
		{9, 8},
		{7, 1},
	}
	g, err := Greedy(value)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Optimal(value)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalValue != 10 {
		t.Errorf("greedy = %v, want 10", g.TotalValue)
	}
	if o.TotalValue != 15 {
		t.Errorf("optimal = %v, want 15", o.TotalValue)
	}
}

func TestRectangularMoreWorkersThanTasks(t *testing.T) {
	value := [][]float64{
		{5},
		{7},
		{6},
	}
	res, err := Optimal(value)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalValue != 7 {
		t.Errorf("TotalValue = %v, want 7", res.TotalValue)
	}
	assigned := 0
	for _, tk := range res.TaskOf {
		if tk != -1 {
			assigned++
		}
	}
	if assigned != 1 {
		t.Errorf("assigned = %d, want 1 (single task)", assigned)
	}
}

func TestRectangularMoreTasksThanWorkers(t *testing.T) {
	value := [][]float64{
		{1, 9, 2, 3},
	}
	res, err := Optimal(value)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalValue != 9 || res.TaskOf[0] != 1 {
		t.Errorf("res = %+v, want task 1 value 9", res)
	}
}

func TestNegativeValuesLeftUnassigned(t *testing.T) {
	value := [][]float64{
		{-5, -1},
		{-2, 4},
	}
	for _, solve := range []func([][]float64) (*Result, error){Greedy, Optimal} {
		res, err := solve(value)
		if err != nil {
			t.Fatal(err)
		}
		if res.TaskOf[0] != -1 {
			t.Errorf("worker 0 assigned to harmful task: %+v", res)
		}
		if res.TaskOf[1] != 1 || res.TotalValue != 4 {
			t.Errorf("res = %+v, want worker 1 on task 1, value 4", res)
		}
	}
}

// bruteForce finds the true optimum by permutation enumeration (rows ≤ 8).
func bruteForce(value [][]float64) float64 {
	rows := len(value)
	cols := len(value[0])
	best := 0.0
	taskUsed := make([]bool, cols)
	var rec func(w int, acc float64)
	rec = func(w int, acc float64) {
		if acc > best {
			best = acc
		}
		if w == rows {
			return
		}
		rec(w+1, acc) // leave worker w idle
		for t := 0; t < cols; t++ {
			if !taskUsed[t] && value[w][t] > 0 {
				taskUsed[t] = true
				rec(w+1, acc+value[w][t])
				taskUsed[t] = false
			}
		}
	}
	rec(0, 0)
	return best
}

// Property: Hungarian matches brute force on small random instances, and
// greedy never beats it.
func TestOptimalMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		value := make([][]float64, rows)
		for w := range value {
			value[w] = make([]float64, cols)
			for t := range value[w] {
				value[w][t] = math.Round(rng.Float64()*20-4) / 2 // some negatives
			}
		}
		opt, err := Optimal(value)
		if err != nil {
			return false
		}
		greedy, err := Greedy(value)
		if err != nil {
			return false
		}
		truth := bruteForce(value)
		if math.Abs(opt.TotalValue-truth) > 1e-9 {
			return false
		}
		return greedy.TotalValue <= opt.TotalValue+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: assignments are injective (no task doubly assigned).
func TestAssignmentInjectiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		value := make([][]float64, rows)
		for w := range value {
			value[w] = make([]float64, cols)
			for t := range value[w] {
				value[w][t] = rng.Float64() * 10
			}
		}
		for _, solve := range []func([][]float64) (*Result, error){Greedy, Optimal} {
			res, err := solve(value)
			if err != nil {
				return false
			}
			seen := make(map[int]bool)
			for _, tk := range res.TaskOf {
				if tk == -1 {
					continue
				}
				if tk < 0 || tk >= cols || seen[tk] {
					return false
				}
				seen[tk] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestHungarianLargeSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 120
	value := make([][]float64, n)
	for i := range value {
		value[i] = make([]float64, n)
		for j := range value[i] {
			value[i][j] = rng.Float64() * 100
		}
	}
	res, err := Optimal(value)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Greedy(value)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalValue < g.TotalValue {
		t.Errorf("optimal %v below greedy %v", res.TotalValue, g.TotalValue)
	}
	// A random 120×120 with U[0,100) values: optimum close to 100 per row.
	if res.TotalValue < 0.95*float64(n)*100*0.95 {
		t.Errorf("optimal %v implausibly low", res.TotalValue)
	}
}
