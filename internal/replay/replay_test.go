package replay

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dyncontract/internal/effort"
)

func TestScorePerfectFit(t *testing.T) {
	psi := effort.Quadratic{R2: -0.01, R1: 1, R0: 2}
	efforts := []float64{0, 5, 10, 20}
	feedbacks := make([]float64, len(efforts))
	for i, y := range efforts {
		feedbacks[i] = psi.Eval(y)
	}
	cal, err := Score(psi, efforts, feedbacks)
	if err != nil {
		t.Fatal(err)
	}
	if cal.MAE != 0 || cal.RMSE != 0 || cal.Bias != 0 {
		t.Errorf("perfect fit has errors: %+v", cal)
	}
	if cal.Within1 != 1 {
		t.Errorf("Within1 = %v, want 1", cal.Within1)
	}
	if cal.Skill() != 1 {
		t.Errorf("Skill = %v, want 1", cal.Skill())
	}
}

func TestScoreNoisyFit(t *testing.T) {
	psi := effort.Quadratic{R2: -0.01, R1: 1, R0: 2}
	rng := rand.New(rand.NewSource(4))
	n := 2000
	efforts := make([]float64, n)
	feedbacks := make([]float64, n)
	for i := range efforts {
		efforts[i] = rng.Float64() * 30
		feedbacks[i] = psi.Eval(efforts[i]) + rng.NormFloat64()
	}
	cal, err := Score(psi, efforts, feedbacks)
	if err != nil {
		t.Fatal(err)
	}
	// Unit Gaussian noise: MAE ≈ sqrt(2/π) ≈ 0.8, RMSE ≈ 1, bias ≈ 0.
	if cal.MAE < 0.6 || cal.MAE > 1.0 {
		t.Errorf("MAE = %v, want ~0.8", cal.MAE)
	}
	if math.Abs(cal.Bias) > 0.1 {
		t.Errorf("Bias = %v, want ~0", cal.Bias)
	}
	if cal.RMSE < 0.8 || cal.RMSE > 1.2 {
		t.Errorf("RMSE = %v, want ~1", cal.RMSE)
	}
	// The model explains the effort trend; it must beat the constant
	// predictor substantially.
	if cal.Skill() < 0.5 {
		t.Errorf("Skill = %v, want > 0.5", cal.Skill())
	}
}

func TestScoreUselessModel(t *testing.T) {
	// A model orthogonal to the data: skill near or below zero.
	psi := effort.Quadratic{R2: -0.001, R1: 10, R0: 100} // wildly over-predicts
	efforts := []float64{1, 2, 3, 4}
	feedbacks := []float64{1, 2, 1, 2}
	cal, err := Score(psi, efforts, feedbacks)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Skill() > 0 {
		t.Errorf("Skill = %v for a useless model, want <= 0", cal.Skill())
	}
}

func TestScoreErrors(t *testing.T) {
	psi := effort.Quadratic{R2: -0.01, R1: 1, R0: 0}
	if _, err := Score(psi, []float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Error("length mismatch accepted")
	}
	if _, err := Score(psi, nil, nil); !errors.Is(err, ErrBadInput) {
		t.Error("empty accepted")
	}
	if _, err := Score(psi, []float64{math.NaN()}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Error("NaN accepted")
	}
}

func TestSkillZeroBaseline(t *testing.T) {
	cal := Calibration{MAE: 0.5, BaselineMAE: 0}
	if cal.Skill() != 0 {
		t.Errorf("Skill with zero baseline = %v, want 0", cal.Skill())
	}
}
