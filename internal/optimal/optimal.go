// Package optimal provides a brute-force reference solver for the
// single-agent contract-design subproblem: it grid-searches the space of
// monotone piecewise-linear contracts directly, with no knowledge of the
// paper's candidate construction, and returns the best contract found.
//
// It exists to validate near-optimality claims empirically (the ablation
// experiment in DESIGN.md §4): on small instances the grid optimum brackets
// the true optimum, so comparing core.Design's utility against it measures
// the real optimality gap rather than trusting Theorem 4.1 alone.
//
// Complexity is Θ(grid^m) best responses, so callers must keep m small; the
// package enforces a budget.
package optimal

import (
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/worker"
)

// ErrBudget is returned when grid^m exceeds the evaluation budget.
var ErrBudget = errors.New("optimal: search space exceeds budget")

// Options tunes the search.
type Options struct {
	// SlopeGrid is the number of grid points per piece slope (≥ 2).
	SlopeGrid int
	// MaxSlope caps the per-piece slope; 0 derives it from the agent's
	// Case II boundary at the steepest piece (slopes above that never
	// help: the worker already moves to the right edge).
	MaxSlope float64
	// Budget caps total contract evaluations; 0 means 2,000,000.
	Budget int
}

// Result is the best contract the grid search found.
type Result struct {
	// Contract is the best grid contract.
	Contract *contract.PiecewiseLinear
	// Response is the agent's best response to it.
	Response worker.Response
	// RequesterUtility is w·ψ(y*) − μ·ξ(y*) at the best response.
	RequesterUtility float64
	// Evaluated is the number of contracts scored.
	Evaluated int
}

// Search enumerates slope combinations on the cfg.Part grid and returns
// the contract maximizing the requester's utility under the agent's exact
// best response.
func Search(a *worker.Agent, cfg core.Config, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := a.Validate(cfg.Part.YMax()); err != nil {
		return nil, fmt.Errorf("optimal: %w", err)
	}
	if opts.SlopeGrid < 2 {
		return nil, fmt.Errorf("optimal: slope grid %d < 2", opts.SlopeGrid)
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = 2_000_000
	}
	m := cfg.Part.M
	total := 1
	for i := 0; i < m; i++ {
		total *= opts.SlopeGrid
		if total > budget {
			return nil, fmt.Errorf("optimal: %d^%d evaluations: %w", opts.SlopeGrid, m, ErrBudget)
		}
	}

	maxSlope := opts.MaxSlope
	if maxSlope <= 0 {
		// Beyond the steepest Case II boundary a slope only overpays; use
		// twice that as a safe cap.
		maxSlope = 2 * core.CaseBoundaryUpper(a, cfg.Part, m)
		if maxSlope <= 0 {
			maxSlope = 1
		}
	}

	knots := cfg.Part.Knots(a.Psi)
	slopes := make([]float64, opts.SlopeGrid)
	for i := range slopes {
		slopes[i] = maxSlope * float64(i) / float64(opts.SlopeGrid-1)
	}

	best := &Result{RequesterUtility: math.Inf(-1)}
	choice := make([]int, m)
	for {
		// Build and evaluate the contract for the current choice vector.
		b := contract.NewBuilder(knots[0], 0)
		for l := 1; l <= m; l++ {
			b.AppendSlope(knots[l], slopes[choice[l-1]])
		}
		c, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("optimal: build: %w", err)
		}
		resp, err := a.BestResponse(c, cfg.Part)
		if err != nil {
			return nil, fmt.Errorf("optimal: best response: %w", err)
		}
		u := cfg.W*resp.Feedback - cfg.Mu*resp.Compensation
		best.Evaluated++
		if u > best.RequesterUtility {
			best.RequesterUtility = u
			best.Contract = c
			best.Response = resp
		}
		// Odometer increment over the choice vector.
		i := 0
		for ; i < m; i++ {
			choice[i]++
			if choice[i] < opts.SlopeGrid {
				break
			}
			choice[i] = 0
		}
		if i == m {
			return best, nil
		}
	}
}
