package experiments

import (
	"fmt"

	"dyncontract/internal/replay"
	"dyncontract/internal/worker"
)

// RunCalibration replays the trace through the fitted per-class effort
// functions (internal/replay) and reports how well each ψ predicts
// observed feedback — the absolute-terms complement to Table III's
// relative NoR comparison. Expected shape: every class fit beats the
// constant predictor (positive skill) with near-zero bias.
func RunCalibration(p *Pipeline, _ Params) (*Report, error) {
	rep := &Report{
		ID:     "calibration",
		Title:  "fitted effort-function calibration vs the trace (extension)",
		Header: []string{"class", "reviews", "mae", "bias", "rmse", "within-1-upvote", "skill", "corr"},
	}
	allSkilled := true
	for _, cls := range []worker.Class{worker.Honest, worker.NonCollusiveMalicious, worker.CollusiveMalicious} {
		efforts, feedbacks, err := p.ClassPoints(cls)
		if err != nil {
			return nil, err
		}
		fit, ok := p.ClassFit[cls]
		if !ok {
			return nil, fmt.Errorf("%w: missing fit for %v", ErrPipeline, cls)
		}
		cal, err := replay.Score(fit.Quadratic, efforts, feedbacks)
		if err != nil {
			return nil, fmt.Errorf("calibration %v: %w", cls, err)
		}
		if cal.Skill() <= 0 {
			allSkilled = false
		}
		rep.Rows = append(rep.Rows, []string{
			cls.String(), fmt.Sprintf("%d", cal.N),
			f3(cal.MAE), f3(cal.Bias), f3(cal.RMSE),
			fmt.Sprintf("%.0f%%", 100*cal.Within1), f3(cal.Skill()), f3(cal.Correlation),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"every class fit beats the constant predictor (positive skill): %v", allSkilled))
	return rep, nil
}
