package worker

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
)

func testPsi(t *testing.T) effort.Quadratic {
	t.Helper()
	q, err := effort.NewQuadratic(-0.05, 3, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func testPart(t *testing.T) effort.Partition {
	t.Helper()
	p, err := effort.NewPartition(10, 2) // [0,20)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// linearContract returns a contract paying slope*q over the feedback range
// of psi on [0, yMax].
func linearContract(t *testing.T, psi effort.Quadratic, part effort.Partition, slope float64) *contract.PiecewiseLinear {
	t.Helper()
	knots := part.Knots(psi)
	comps := make([]float64, len(knots))
	for i, d := range knots {
		comps[i] = slope * (d - knots[0])
	}
	c, err := contract.New(knots, comps)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{Honest, "honest"},
		{NonCollusiveMalicious, "non-collusive-malicious"},
		{CollusiveMalicious, "collusive-malicious"},
		{Class(0), "Class(0)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestClassValid(t *testing.T) {
	if Class(0).Valid() || Class(4).Valid() {
		t.Error("invalid classes reported valid")
	}
	if !Honest.Valid() || !CollusiveMalicious.Valid() {
		t.Error("valid classes reported invalid")
	}
}

func TestAgentValidate(t *testing.T) {
	psi := testPsi(t)
	tests := []struct {
		name  string
		agent Agent
	}{
		{"zero class", Agent{ID: "w", Psi: psi, Beta: 1, Size: 1}},
		{"zero beta", Agent{ID: "w", Class: Honest, Psi: psi, Beta: 0, Size: 1}},
		{"negative omega", Agent{ID: "w", Class: NonCollusiveMalicious, Psi: psi, Beta: 1, Omega: -1, Size: 1}},
		{"honest with omega", Agent{ID: "w", Class: Honest, Psi: psi, Beta: 1, Omega: 0.5, Size: 1}},
		{"zero size", Agent{ID: "w", Class: Honest, Psi: psi, Beta: 1, Size: 0}},
		{"individual with size 3", Agent{ID: "w", Class: Honest, Psi: psi, Beta: 1, Size: 3}},
		{"NaN beta", Agent{ID: "w", Class: Honest, Psi: psi, Beta: math.NaN(), Size: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.agent.Validate(10); err == nil {
				t.Error("want validation error, got nil")
			}
		})
	}
	ok := Agent{ID: "w", Class: CollusiveMalicious, Psi: psi, Beta: 1, Omega: 0.3, Size: 4}
	if err := ok.Validate(10); err != nil {
		t.Errorf("valid community rejected: %v", err)
	}
}

func TestConstructors(t *testing.T) {
	psi := testPsi(t)
	if _, err := NewHonest("h", psi, 1, 20); err != nil {
		t.Errorf("NewHonest: %v", err)
	}
	if _, err := NewMalicious("m", psi, 1, 0.5, 20); err != nil {
		t.Errorf("NewMalicious: %v", err)
	}
	if _, err := NewCommunity("c", psi, 1, 0.5, 5, 20); err != nil {
		t.Errorf("NewCommunity: %v", err)
	}
	if _, err := NewHonest("bad", psi, -1, 20); !errors.Is(err, ErrInvalidAgent) {
		t.Errorf("NewHonest bad beta: err = %v, want ErrInvalidAgent", err)
	}
}

func TestUtilityComputation(t *testing.T) {
	psi := testPsi(t)
	part := testPart(t)
	c := linearContract(t, psi, part, 1)
	a, err := NewMalicious("m", psi, 2, 0.5, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	y := 3.0
	q := psi.Eval(y)
	want := c.Eval(q) - 2*y + 0.5*q
	if got := a.Utility(c, y); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility = %v, want %v", got, want)
	}
}

func TestBestResponseZeroContractHonest(t *testing.T) {
	// Flat zero contract: an honest worker's best response is zero effort.
	psi := testPsi(t)
	part := testPart(t)
	flat, err := contract.Flat(psi.Eval(0), psi.Eval(part.YMax()), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewHonest("h", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.BestResponse(flat, part)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Effort != 0 {
		t.Errorf("Effort = %v, want 0", resp.Effort)
	}
	if resp.Compensation != 0 || resp.Utility != 0 {
		t.Errorf("resp = %+v, want zero comp/utility", resp)
	}
	if resp.Interval != 1 {
		t.Errorf("Interval = %d, want 1", resp.Interval)
	}
}

func TestBestResponseFlatContractMalicious(t *testing.T) {
	// With a flat contract, a malicious worker still works if ω·ψ′(0) > β:
	// optimum at ψ′(y) = β/ω.
	psi := testPsi(t) // psi'(0) = 3
	part := testPart(t)
	flat, err := contract.Flat(psi.Eval(0), psi.Eval(part.YMax()), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewMalicious("m", psi, 1, 1, part.YMax()) // beta/omega = 1 < 3
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.BestResponse(flat, part)
	if err != nil {
		t.Fatal(err)
	}
	wantY, ok := psi.InverseDeriv(1)
	if !ok {
		t.Fatal("InverseDeriv out of range")
	}
	if math.Abs(resp.Effort-wantY) > 1e-9 {
		t.Errorf("Effort = %v, want %v", resp.Effort, wantY)
	}
}

func TestBestResponseLinearContractInterior(t *testing.T) {
	// Steep linear contract: honest worker's optimum is interior at
	// ψ′(y) = β/α.
	psi := testPsi(t)
	part := testPart(t)
	alpha := 2.0
	c := linearContract(t, psi, part, alpha)
	a, err := NewHonest("h", psi, 3, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.BestResponse(c, part)
	if err != nil {
		t.Fatal(err)
	}
	wantY, _ := psi.InverseDeriv(3.0 / alpha) // psi'(y) = beta/alpha = 1.5 -> y = 15
	if math.Abs(resp.Effort-wantY) > 1e-9 {
		t.Errorf("Effort = %v, want %v", resp.Effort, wantY)
	}
	// Cross-check against a fine grid search.
	gridBest, gridY := math.Inf(-1), 0.0
	for i := 0; i <= 200000; i++ {
		y := float64(i) * part.YMax() / 200000
		if u := a.Utility(c, y); u > gridBest {
			gridBest, gridY = u, y
		}
	}
	if math.Abs(resp.Effort-gridY) > 1e-3 {
		t.Errorf("analytic %v vs grid %v", resp.Effort, gridY)
	}
	if resp.Utility < gridBest-1e-9 {
		t.Errorf("analytic utility %v below grid %v", resp.Utility, gridBest)
	}
}

func TestBestResponseRespectsApex(t *testing.T) {
	// Partition extends past the apex of psi; the worker must not work
	// beyond the apex even under an absurdly generous contract.
	psi, err := effort.NewQuadratic(-0.5, 3, 0, 2.9) // apex at 3
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(10, 1) // up to y=10, beyond apex
	if err != nil {
		t.Fatal(err)
	}
	knots := []float64{psi.Eval(0), psi.Eval(3) + 1}
	comps := []float64{0, 1000}
	c, err := contract.New(knots, comps)
	if err != nil {
		t.Fatal(err)
	}
	a := &Agent{ID: "h", Class: Honest, Psi: psi, Beta: 0.01, Size: 1}
	resp, err := a.BestResponse(c, part)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Effort > 3+1e-9 {
		t.Errorf("Effort = %v exceeds apex 3", resp.Effort)
	}
}

func TestBestResponseInvalidAgent(t *testing.T) {
	psi := testPsi(t)
	part := testPart(t)
	c := linearContract(t, psi, part, 1)
	bad := &Agent{ID: "x", Class: Honest, Psi: psi, Beta: -1, Size: 1}
	if _, err := bad.BestResponse(c, part); err == nil {
		t.Fatal("invalid agent: want error")
	}
}

// Property: BestResponse is never beaten by any grid point, for random
// monotone contracts and random worker parameters.
func TestBestResponseGlobalOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		psi, err := effort.NewQuadratic(-(0.01 + rng.Float64()*0.1), 1+rng.Float64()*4, rng.Float64(), 10)
		if err != nil {
			return true // apex inside the working range; not a valid draw
		}
		part, err := effort.NewPartition(5+rng.Intn(6), 1)
		if err != nil {
			return false
		}
		if psi.Deriv(part.YMax()) <= 0 {
			return true // partition beyond increasing range; skip
		}
		knots := part.Knots(psi)
		comps := make([]float64, len(knots))
		for i := 1; i < len(comps); i++ {
			comps[i] = comps[i-1] + rng.Float64()*2
		}
		c, err := contract.New(knots, comps)
		if err != nil {
			return false
		}
		omega := 0.0
		class := Honest
		if rng.Intn(2) == 1 {
			omega = rng.Float64()
			class = NonCollusiveMalicious
		}
		a := &Agent{ID: "w", Class: class, Psi: psi, Beta: 0.2 + rng.Float64(), Omega: omega, Size: 1}
		resp, err := a.BestResponse(c, part)
		if err != nil {
			return false
		}
		yCap := math.Min(part.YMax(), psi.Apex())
		for i := 0; i <= 2000; i++ {
			y := float64(i) * yCap / 2000
			if a.Utility(c, y) > resp.Utility+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: under a steeper contract (pointwise higher slopes), the worker's
// best-response utility cannot decrease.
func TestBestResponseMonotoneInContractProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		psi, err := effort.NewQuadratic(-0.02, 2, 0.5, 12)
		if err != nil {
			return false
		}
		part, err := effort.NewPartition(6, 2)
		if err != nil {
			return false
		}
		knots := part.Knots(psi)
		comps := make([]float64, len(knots))
		for i := 1; i < len(comps); i++ {
			comps[i] = comps[i-1] + rng.Float64()
		}
		lower, err := contract.New(knots, comps)
		if err != nil {
			return false
		}
		higher := make([]float64, len(comps))
		copy(higher, comps)
		for i := 1; i < len(higher); i++ {
			higher[i] += float64(i) * 0.1 // pointwise >= lower, still monotone
		}
		upper, err := contract.New(knots, higher)
		if err != nil {
			return false
		}
		a := &Agent{ID: "w", Class: Honest, Psi: psi, Beta: 1, Size: 1}
		r1, err := a.BestResponse(lower, part)
		if err != nil {
			return false
		}
		r2, err := a.BestResponse(upper, part)
		if err != nil {
			return false
		}
		return r2.Utility >= r1.Utility-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
