package engine_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dyncontract/internal/engine"
)

// TestPopulationValidate table-drives the tightened Validate checks:
// non-finite weights, out-of-range or NaN malice probabilities, and orphan
// Weights/MaliceProb entries whose IDs match no agent.
func TestPopulationValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(p *engine.Population)
		wantErr string // substring of the error; "" means valid
	}{
		{
			name:   "valid",
			mutate: func(p *engine.Population) {},
		},
		{
			name: "valid without malice entries",
			mutate: func(p *engine.Population) {
				p.MaliceProb = nil
			},
		},
		{
			name: "valid with partial malice entries",
			mutate: func(p *engine.Population) {
				delete(p.MaliceProb, p.Agents[0].ID)
			},
		},
		{
			name:    "no agents",
			mutate:  func(p *engine.Population) { p.Agents = nil },
			wantErr: "no agents",
		},
		{
			name: "empty agent ID",
			mutate: func(p *engine.Population) {
				clone := *p.Agents[1]
				clone.ID = ""
				p.Agents[1] = &clone
				p.Weights[""] = 1
			},
			wantErr: "empty ID",
		},
		{
			name: "duplicate agent ID",
			mutate: func(p *engine.Population) {
				clone := *p.Agents[0]
				p.Agents[2] = &clone
			},
			wantErr: "duplicate agent",
		},
		{
			name:    "NaN weight",
			mutate:  func(p *engine.Population) { p.Weights[p.Agents[1].ID] = math.NaN() },
			wantErr: "weight",
		},
		{
			name:    "positive infinite weight",
			mutate:  func(p *engine.Population) { p.Weights[p.Agents[0].ID] = math.Inf(1) },
			wantErr: "weight",
		},
		{
			name:    "negative infinite weight",
			mutate:  func(p *engine.Population) { p.Weights[p.Agents[2].ID] = math.Inf(-1) },
			wantErr: "weight",
		},
		{
			name:    "missing weight",
			mutate:  func(p *engine.Population) { delete(p.Weights, p.Agents[1].ID) },
			wantErr: "has no weight",
		},
		{
			name:    "malice probability below zero",
			mutate:  func(p *engine.Population) { p.MaliceProb[p.Agents[0].ID] = -0.1 },
			wantErr: "malice probability",
		},
		{
			name:    "malice probability above one",
			mutate:  func(p *engine.Population) { p.MaliceProb[p.Agents[1].ID] = 1.5 },
			wantErr: "malice probability",
		},
		{
			name:    "NaN malice probability",
			mutate:  func(p *engine.Population) { p.MaliceProb[p.Agents[2].ID] = math.NaN() },
			wantErr: "malice probability",
		},
		{
			name:    "orphan weight entry",
			mutate:  func(p *engine.Population) { p.Weights["ghost-w"] = 1 },
			wantErr: `weight for unknown agent "ghost-w"`,
		},
		{
			name: "orphan malice entry",
			mutate: func(p *engine.Population) {
				p.MaliceProb["ghost-m"] = 0.5
			},
			wantErr: `malice probability for unknown agent "ghost-m"`,
		},
		{
			name: "orphan malice entry with partial coverage",
			// Fewer malice entries than agents must not mask the orphan:
			// the mismatch is against matched entries, not len(Agents).
			mutate: func(p *engine.Population) {
				for _, a := range p.Agents {
					delete(p.MaliceProb, a.ID)
				}
				p.MaliceProb["ghost-m"] = 0.5
			},
			wantErr: `malice probability for unknown agent "ghost-m"`,
		},
		{
			name: "orphan entries from drift removal",
			// The motivating case: a drift hook dropped an agent from the
			// slice but left both map entries behind.
			mutate: func(p *engine.Population) {
				p.Agents = p.Agents[1:]
			},
			wantErr: "unknown agent",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pop := archetypePopulation(t, 6)
			tt.mutate(pop)
			err := pop.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tt.wantErr)
			}
			if !errors.Is(err, engine.ErrBadPopulation) {
				t.Errorf("Validate() = %v, want errors.Is ErrBadPopulation", err)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("Validate() = %q, want substring %q", err, tt.wantErr)
			}
		})
	}
}
