// Command driftcheck is the smoke test's sparse-drift probe: against a
// live contractd it creates a small sharded session, advances a round,
// drifts exactly one agent's feedback weight, and asserts that (a) the
// drift response reports touched=1 and (b) the next round's ledger rows
// change for that agent only — every untouched agent's outcome row must
// come back byte-for-byte identical. It then fires a structural churn
// burst: five agents join in one drift (response reports joined=5,
// exactly their five rows appear next round, every pre-existing row
// stays byte-identical), then the same five leave (left=5, their rows
// vanish, the survivors' rows are again untouched). Exit 0 on success,
// 1 with a diagnostic on any mismatch.
//
// Usage:
//
//	driftcheck -addr http://127.0.0.1:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"dyncontract/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "contractd base URL")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "driftcheck:", err)
		os.Exit(1)
	}
	fmt.Println("driftcheck: sparse drift perturbed only the touched agent's ledger row; structural churn spliced only the joined/left rows")
}

func run(addr string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	psi := server.PsiSpec{R2: -0.25, R1: 2}
	create := server.CreateSessionRequest{
		Agents: []server.AgentSpec{
			{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
			{ID: "h2", Class: "honest", Psi: psi, Beta: 1.2, Weight: 1},
			{ID: "m1", Class: "malicious", Psi: psi, Beta: 1, Omega: 0.5, Weight: 0.8, Malice: 0.9},
			{ID: "c1", Class: "community", Psi: psi, Beta: 1, Omega: 0.3, Size: 3, Weight: 0.5},
		},
		M: 10, Delta: 0.2, Mu: 1, Shards: 2,
	}
	var created server.CreateSessionResponse
	if err := post(client, addr+"/v1/sessions", create, &created, http.StatusCreated); err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	base := addr + "/v1/sessions/" + created.ID

	advance := func() (server.RoundJSON, error) {
		var out server.RoundJSON
		err := post(client, base+"/rounds", server.AdvanceRoundRequest{IncludeOutcomes: true}, &out, http.StatusOK)
		return out, err
	}

	before, err := advance()
	if err != nil {
		return fmt.Errorf("round before drift: %w", err)
	}

	var dr server.DriftResponse
	drift := server.DriftRequest{Weights: map[string]float64{"h1": 1.3}}
	if err := post(client, base+"/drift", drift, &dr, http.StatusOK); err != nil {
		return fmt.Errorf("drift: %w", err)
	}
	if dr.Touched != 1 || dr.Updated != 1 {
		return fmt.Errorf("drift response = %+v, want touched=1 updated=1", dr)
	}

	after, err := advance()
	if err != nil {
		return fmt.Errorf("round after drift: %w", err)
	}
	rows := map[string]server.OutcomeJSON{}
	for _, oc := range after.Outcomes {
		rows[oc.AgentID] = oc
	}
	for _, oc := range before.Outcomes {
		got, ok := rows[oc.AgentID]
		if !ok {
			return fmt.Errorf("agent %s has no outcome row after drift", oc.AgentID)
		}
		if oc.AgentID == "h1" {
			if got == oc {
				return fmt.Errorf("touched agent h1's ledger row did not change after weight drift")
			}
			if got.Weight != 1.3 {
				return fmt.Errorf("h1 weight = %v after drift, want 1.3", got.Weight)
			}
			continue
		}
		if got != oc {
			return fmt.Errorf("untouched agent %s's ledger row changed: %+v -> %+v", oc.AgentID, oc, got)
		}
	}

	// Structural churn burst: five agents join in one drift request. Only
	// their rows may appear in the next round; every pre-existing row must
	// stay byte-identical (the engine splices the joiners in, it does not
	// rebuild).
	joiners := make([]server.AgentSpec, 5)
	joinIDs := make(map[string]bool, 5)
	for i := range joiners {
		id := fmt.Sprintf("dc-join-%d", i)
		joiners[i] = server.AgentSpec{ID: id, Class: "honest", Psi: psi, Beta: 1, Weight: 1}
		joinIDs[id] = true
	}
	dr = server.DriftResponse{}
	if err := post(client, base+"/drift", server.DriftRequest{Add: joiners}, &dr, http.StatusOK); err != nil {
		return fmt.Errorf("join drift: %w", err)
	}
	if dr.Joined != 5 {
		return fmt.Errorf("join drift response = %+v, want joined=5", dr)
	}
	joined, err := advance()
	if err != nil {
		return fmt.Errorf("round after join: %w", err)
	}
	if want := len(after.Outcomes) + 5; len(joined.Outcomes) != want {
		return fmt.Errorf("after join: %d outcome rows, want %d", len(joined.Outcomes), want)
	}
	rows = map[string]server.OutcomeJSON{}
	for _, oc := range joined.Outcomes {
		rows[oc.AgentID] = oc
	}
	for id := range joinIDs {
		if _, ok := rows[id]; !ok {
			return fmt.Errorf("joined agent %s has no outcome row", id)
		}
	}
	for _, oc := range after.Outcomes {
		got, ok := rows[oc.AgentID]
		if !ok {
			return fmt.Errorf("agent %s lost its outcome row after join burst", oc.AgentID)
		}
		if got != oc {
			return fmt.Errorf("pre-existing agent %s's ledger row changed across join burst: %+v -> %+v", oc.AgentID, oc, got)
		}
	}

	// The same five leave. Their rows must vanish; the survivors' rows must
	// again come back byte-identical.
	removeIDs := make([]string, 0, len(joinIDs))
	for id := range joinIDs {
		removeIDs = append(removeIDs, id)
	}
	dr = server.DriftResponse{}
	if err := post(client, base+"/drift", server.DriftRequest{Remove: removeIDs}, &dr, http.StatusOK); err != nil {
		return fmt.Errorf("leave drift: %w", err)
	}
	if dr.Left != 5 {
		return fmt.Errorf("leave drift response = %+v, want left=5", dr)
	}
	left, err := advance()
	if err != nil {
		return fmt.Errorf("round after leave: %w", err)
	}
	if len(left.Outcomes) != len(after.Outcomes) {
		return fmt.Errorf("after leave: %d outcome rows, want %d", len(left.Outcomes), len(after.Outcomes))
	}
	rows = map[string]server.OutcomeJSON{}
	for _, oc := range left.Outcomes {
		if joinIDs[oc.AgentID] {
			return fmt.Errorf("left agent %s still has an outcome row", oc.AgentID)
		}
		rows[oc.AgentID] = oc
	}
	for _, oc := range joined.Outcomes {
		if joinIDs[oc.AgentID] {
			continue
		}
		got, ok := rows[oc.AgentID]
		if !ok {
			return fmt.Errorf("surviving agent %s lost its outcome row after leave burst", oc.AgentID)
		}
		if got != oc {
			return fmt.Errorf("surviving agent %s's ledger row changed across leave burst: %+v -> %+v", oc.AgentID, oc, got)
		}
	}
	return nil
}

// post issues one JSON POST and decodes the response, insisting on the
// expected status.
func post(client *http.Client, url string, in, out any, want int) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, want, raw)
	}
	return json.Unmarshal(raw, out)
}
