package solver

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func solverFixture(t *testing.T, n int) []Subproblem {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]Subproblem, n)
	for i := range subs {
		a, err := worker.NewHonest(fmt.Sprintf("w%03d", i), psi, 1, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = Subproblem{
			Agent:  a,
			Config: core.Config{Part: part, Mu: 1, W: 1 + float64(i%5)*0.1},
		}
	}
	return subs
}

func TestSolveAllMatchesSequential(t *testing.T) {
	subs := solverFixture(t, 50)
	outcomes, err := SolveAll(context.Background(), subs, Options{Parallelism: 8})
	if err != nil {
		t.Fatalf("SolveAll: %v", err)
	}
	if len(outcomes) != len(subs) {
		t.Fatalf("outcomes = %d, want %d", len(outcomes), len(subs))
	}
	for i, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("subproblem %d failed: %v", i, o.Err)
		}
		seq, err := core.Design(subs[i].Agent, subs[i].Config)
		if err != nil {
			t.Fatalf("sequential %d: %v", i, err)
		}
		if o.Result.KOpt != seq.KOpt {
			t.Errorf("subproblem %d: parallel KOpt %d != sequential %d", i, o.Result.KOpt, seq.KOpt)
		}
		if o.Result.RequesterUtility != seq.RequesterUtility {
			t.Errorf("subproblem %d: utilities differ", i)
		}
		if o.Index != i {
			t.Errorf("outcome %d has index %d", i, o.Index)
		}
	}
}

func TestSolveAllEmpty(t *testing.T) {
	outcomes, err := SolveAll(context.Background(), nil, Options{})
	if err != nil || len(outcomes) != 0 {
		t.Fatalf("empty input: %v, %v", outcomes, err)
	}
}

func TestSolveAllDefaultParallelism(t *testing.T) {
	subs := solverFixture(t, 5)
	outcomes, err := SolveAll(context.Background(), subs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(Results(outcomes)) != 5 {
		t.Errorf("results = %d, want 5", len(Results(outcomes)))
	}
}

func TestSolveAllFailFast(t *testing.T) {
	subs := solverFixture(t, 20)
	// Poison one subproblem.
	subs[7].Config.Mu = -1
	_, err := SolveAll(context.Background(), subs, Options{Parallelism: 4})
	if err == nil {
		t.Fatal("poisoned subproblem: want error")
	}
	if !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("err = %v, want wrapped ErrBadConfig", err)
	}
}

func TestSolveAllContinueOnError(t *testing.T) {
	subs := solverFixture(t, 12)
	subs[3].Config.Mu = -1
	subs[9].Config.Mu = -1
	outcomes, err := SolveAll(context.Background(), subs, Options{Parallelism: 3, ContinueOnError: true})
	if err != nil {
		t.Fatalf("ContinueOnError returned top-level error: %v", err)
	}
	if got := len(Results(outcomes)); got != 10 {
		t.Errorf("successes = %d, want 10", got)
	}
	joined := Errs(outcomes)
	if joined == nil {
		t.Fatal("Errs = nil, want aggregate error")
	}
	if !errors.Is(joined, core.ErrBadConfig) {
		t.Errorf("aggregate error %v does not wrap ErrBadConfig", joined)
	}
	if outcomes[3].Err == nil || outcomes[9].Err == nil {
		t.Error("poisoned entries lack errors")
	}
}

func TestSolveAllPreCancelled(t *testing.T) {
	subs := solverFixture(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outcomes, err := SolveAll(ctx, subs, Options{Parallelism: 2})
	if err == nil {
		t.Fatal("cancelled context: want error")
	}
	if !errors.Is(err, ErrCancelled) && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want cancellation", err)
	}
	for _, o := range outcomes {
		if o.Err == nil {
			// Workers may have completed a few before observing
			// cancellation; that is acceptable — but with a pre-cancelled
			// context the pool should not start any work.
			t.Errorf("subproblem %d completed under pre-cancelled context", o.Index)
		}
	}
}

func TestErrsNilWhenClean(t *testing.T) {
	outcomes := []Outcome{{Index: 0}, {Index: 1}}
	if err := Errs(outcomes); err != nil {
		t.Errorf("Errs = %v, want nil", err)
	}
}

func TestSolveAllParallelismOne(t *testing.T) {
	subs := solverFixture(t, 8)
	outcomes, err := SolveAll(context.Background(), subs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(Results(outcomes)) != 8 {
		t.Error("sequential-mode pool lost results")
	}
}

func TestSolveAllManyMoreWorkersThanTasks(t *testing.T) {
	subs := solverFixture(t, 3)
	outcomes, err := SolveAll(context.Background(), subs, Options{Parallelism: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(Results(outcomes)) != 3 {
		t.Error("oversized pool lost results")
	}
}

func TestSolveAllIntoMatchesSolveAll(t *testing.T) {
	subs := solverFixture(t, 20)
	ctx := context.Background()
	want, err := SolveAll(ctx, subs, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Oversized, poisoned buffer: every fed entry must be overwritten.
	buf := make([]Outcome, 32)
	for i := range buf {
		buf[i] = Outcome{Index: -1, Err: errors.New("stale")}
	}
	if err := SolveAllInto(ctx, subs, buf, Options{Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	for i := range subs {
		got := buf[i]
		if got.Index != i || got.Err != nil || got.Result == nil {
			t.Fatalf("outcome %d = {Index:%d Err:%v Result:%v}", i, got.Index, got.Err, got.Result != nil)
		}
		if got.Result.Contract.Eval(1) != want[i].Result.Contract.Eval(1) {
			t.Errorf("outcome %d diverges from SolveAll", i)
		}
	}
	// The slack beyond len(subs) is untouched.
	if buf[len(subs)].Index != -1 {
		t.Error("buffer slack was overwritten")
	}
}

func TestSolveAllIntoShortBuffer(t *testing.T) {
	subs := solverFixture(t, 5)
	buf := make([]Outcome, 3)
	if err := SolveAllInto(context.Background(), subs, buf, Options{}); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestSolveAllIntoReuse(t *testing.T) {
	// The engine's hot loop reuses one buffer across rounds; a second call
	// with fewer subproblems must still fully overwrite its prefix.
	ctx := context.Background()
	buf := make([]Outcome, 16)
	if err := SolveAllInto(ctx, solverFixture(t, 16), buf, Options{}); err != nil {
		t.Fatal(err)
	}
	subs := solverFixture(t, 4)
	if err := SolveAllInto(ctx, subs, buf, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range subs {
		if buf[i].Index != i || buf[i].Result == nil {
			t.Fatalf("reused buffer entry %d not overwritten: %+v", i, buf[i])
		}
	}
}

// Both cancellation paths — worker-observed (a worker pulled the index but
// saw ctx.Err before designing) and unfed (the feeder marked the tail after
// cancellation) — must produce errors satisfying errors.Is for BOTH
// ErrCancelled and the underlying context cause.
func TestCancellationErrorsWrapBothSentinels(t *testing.T) {
	subs := solverFixture(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// ContinueOnError keeps per-entry errors in place without a pool-level
	// short-circuit, so every entry is marked by whichever path saw it.
	outcomes, err := SolveAll(ctx, subs, Options{Parallelism: 4, ContinueOnError: true})
	if err != nil {
		t.Fatalf("ContinueOnError returned top-level error: %v", err)
	}
	for _, o := range outcomes {
		if o.Err == nil {
			t.Fatalf("subproblem %d ran under pre-cancelled context", o.Index)
		}
		if !errors.Is(o.Err, ErrCancelled) {
			t.Errorf("subproblem %d: %v does not wrap ErrCancelled", o.Index, o.Err)
		}
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("subproblem %d: %v does not wrap context.Canceled", o.Index, o.Err)
		}
	}
}

// The pool-level return for a cancelled run wraps the same way.
func TestPoolLevelCancellationWrapsBothSentinels(t *testing.T) {
	subs := solverFixture(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveAll(ctx, subs, Options{Parallelism: 2})
	if err == nil {
		t.Fatal("cancelled context: want error")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want wrapped ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}

// A deadline-based cancellation surfaces context.DeadlineExceeded through
// the same wrap, and unfed entries carry it too.
func TestDeadlineCancellationWrapsCause(t *testing.T) {
	subs := solverFixture(t, 32)
	ctx, cancel := context.WithTimeout(context.Background(), -time.Millisecond)
	defer cancel()
	outcomes, err := SolveAll(ctx, subs, Options{Parallelism: 3, ContinueOnError: true})
	if err != nil {
		t.Fatalf("ContinueOnError returned top-level error: %v", err)
	}
	for _, o := range outcomes {
		if !errors.Is(o.Err, ErrCancelled) || !errors.Is(o.Err, context.DeadlineExceeded) {
			t.Errorf("subproblem %d: %v, want ErrCancelled wrapping DeadlineExceeded", o.Index, o.Err)
		}
	}
}
