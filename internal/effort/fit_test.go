package effort

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitConcaveQuadraticCleanData(t *testing.T) {
	// Data from a true concave increasing quadratic: recovered unprojected.
	truth := Quadratic{R2: -0.01, R1: 1.5, R0: 2}
	rng := rand.New(rand.NewSource(1))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 40
		ys[i] = truth.Eval(xs[i]) + 0.01*rng.NormFloat64()
	}
	res, err := FitConcaveQuadratic(xs, ys)
	if err != nil {
		t.Fatalf("FitConcaveQuadratic: %v", err)
	}
	if res.Projected {
		t.Error("clean concave data was projected")
	}
	if math.Abs(res.Quadratic.R2-truth.R2) > 1e-3 ||
		math.Abs(res.Quadratic.R1-truth.R1) > 1e-2 ||
		math.Abs(res.Quadratic.R0-truth.R0) > 0.1 {
		t.Errorf("fit = %+v, want ~%+v", res.Quadratic, truth)
	}
	if res.NoR != res.UnconstrainedNoR {
		t.Error("unprojected fit must report equal NoRs")
	}
}

func TestFitConcaveQuadraticConvexData(t *testing.T) {
	// Convex-trending data: the unconstrained quadratic has r2 > 0 and the
	// fit must project to a valid concave increasing function.
	rng := rand.New(rand.NewSource(2))
	n := 150
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = 0.5*xs[i]*xs[i] + xs[i] + rng.NormFloat64()
	}
	res, err := FitConcaveQuadratic(xs, ys)
	if err != nil {
		t.Fatalf("FitConcaveQuadratic: %v", err)
	}
	if !res.Projected {
		t.Error("convex data not marked as projected")
	}
	if err := res.Quadratic.Validate(res.YMax); err != nil {
		t.Errorf("projected fit invalid: %v", err)
	}
	if res.NoR < res.UnconstrainedNoR-1e-9 {
		t.Error("constrained NoR beat unconstrained NoR; impossible")
	}
}

func TestFitConcaveQuadraticDecreasingData(t *testing.T) {
	// Strictly decreasing data admits no increasing effort function.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{10, 8, 6, 4, 2, 0}
	if _, err := FitConcaveQuadratic(xs, ys); !errors.Is(err, ErrFitFailed) {
		t.Fatalf("err = %v, want ErrFitFailed", err)
	}
}

func TestFitConcaveQuadraticErrors(t *testing.T) {
	if _, err := FitConcaveQuadratic([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrFitFailed) {
		t.Error("length mismatch accepted")
	}
	if _, err := FitConcaveQuadratic([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrFitFailed) {
		t.Error("two points accepted")
	}
	if _, err := FitConcaveQuadratic([]float64{-1, 2, 3}, []float64{1, 2, 3}); !errors.Is(err, ErrFitFailed) {
		t.Error("negative effort accepted")
	}
	if _, err := FitConcaveQuadratic([]float64{0, 0, 0}, []float64{1, 2, 3}); !errors.Is(err, ErrFitFailed) {
		t.Error("all-zero efforts accepted")
	}
	if _, err := FitConcaveQuadratic([]float64{1, math.NaN(), 3}, []float64{1, 2, 3}); !errors.Is(err, ErrFitFailed) {
		t.Error("NaN effort accepted")
	}
}

// Property: whenever FitConcaveQuadratic succeeds, the result is a valid
// concave increasing quadratic over the data range.
func TestFitConcaveQuadraticValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		// Mix of shapes: concave, linear, convex, noisy.
		a := rng.NormFloat64()
		b := rng.NormFloat64() * 0.1
		c := rng.Float64() * 3
		for i := range xs {
			xs[i] = rng.Float64() * 20
			ys[i] = c + a*xs[i] + b*xs[i]*xs[i] + rng.NormFloat64()
		}
		res, err := FitConcaveQuadratic(xs, ys)
		if err != nil {
			return true // rejection is a legal outcome for bad shapes
		}
		return res.Quadratic.Validate(res.YMax) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
