package experiments

import (
	"fmt"

	"dyncontract/internal/core"
	"dyncontract/internal/textplot"
	"dyncontract/internal/worker"
)

// RunParams is the mechanism ablation: it sweeps the two worker-side
// parameters the model turns on and reports how the designed contract
// reacts.
//
//   - ω (malicious feedback weight): as ω grows, the worker's intrinsic
//     motivation substitutes for pay — compensation must fall monotonically
//     at equal induced effort. This is the analytic heart of Fig. 8(b)'s
//     "malicious workers get paid less".
//   - β (effort cost): as β grows, effort gets more expensive and the
//     requester induces less of it, paying more per achieved feedback.
func RunParams(p *Pipeline, params Params) (*Report, error) {
	part, err := p.Partition(params.M)
	if err != nil {
		return nil, err
	}
	fit, ok := p.ClassFit[worker.Honest]
	if !ok {
		return nil, fmt.Errorf("%w: missing honest fit", ErrPipeline)
	}
	psi := fit.Quadratic

	rep := &Report{
		ID:     "params",
		Title:  "mechanism ablation: designed contract vs omega and beta (extension)",
		Header: []string{"sweep", "value", "k_opt", "effort", "feedback", "pay", "requester-utility"},
	}

	// ω sweep at fixed β: intrinsic motivation displaces pay.
	omegas := []float64{0, 0.25, 0.5, 1, 2}
	var omegaXs, omegaPay []float64
	payMonotone := true
	prevPay := -1.0
	for _, omega := range omegas {
		var a *worker.Agent
		var err error
		if omega == 0 {
			a, err = worker.NewHonest("sweep", psi, params.Beta, part.YMax())
		} else {
			a, err = worker.NewMalicious("sweep", psi, params.Beta, omega, part.YMax())
		}
		if err != nil {
			return nil, err
		}
		res, err := core.Design(a, core.Config{Part: part, Mu: params.Mu, W: 1})
		if err != nil {
			return nil, fmt.Errorf("params omega=%v: %w", omega, err)
		}
		pay := res.Response.Compensation
		if prevPay >= 0 && pay > prevPay+1e-9 {
			payMonotone = false
		}
		prevPay = pay
		omegaXs = append(omegaXs, omega)
		omegaPay = append(omegaPay, pay)
		rep.Rows = append(rep.Rows, []string{
			"omega", f2(omega), fmt.Sprintf("%d", res.KOpt),
			f2(res.Response.Effort), f2(res.Response.Feedback), f3(pay), f3(res.RequesterUtility),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"pay falls monotonically as omega rises (intrinsic motivation displaces compensation): %v", payMonotone))

	// β sweep at ω = 0: costlier effort ⇒ less induced effort.
	betas := []float64{0.5, 1, 2, 4}
	effortMonotone := true
	prevEffort := 1e300
	for _, beta := range betas {
		a, err := worker.NewHonest("sweep", psi, beta, part.YMax())
		if err != nil {
			return nil, err
		}
		res, err := core.Design(a, core.Config{Part: part, Mu: params.Mu, W: 1})
		if err != nil {
			return nil, fmt.Errorf("params beta=%v: %w", beta, err)
		}
		if res.Response.Effort > prevEffort+1e-9 {
			effortMonotone = false
		}
		prevEffort = res.Response.Effort
		rep.Rows = append(rep.Rows, []string{
			"beta", f2(beta), fmt.Sprintf("%d", res.KOpt),
			f2(res.Response.Effort), f2(res.Response.Feedback), f3(res.Response.Compensation), f3(res.RequesterUtility),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"induced effort falls monotonically as beta rises (costlier effort): %v", effortMonotone))

	rep.Series = []textplot.Series{{Name: "pay vs omega", X: omegaXs, Y: omegaPay}}
	rep.XLabel = "omega"
	return rep, nil
}
