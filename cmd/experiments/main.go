// Command experiments regenerates the paper's tables and figures on a
// synthetic trace (or a trace file produced by tracegen).
//
// Usage:
//
//	experiments [-run id[,id...]] [-scale small|paper] [-seed n] [-trace file.jsonl]
//	            [-cachestats] [-respondstats] [-respond-parallel n]
//	            [-shards n] [-shardstats] [-driftstats]
//	            [-metrics out.jsonl] [-metrics-listen addr]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	            [-spans] [-trace-sample p] [-trace-out file]
//	experiments -list
//
// -spans records one execution span per experiment run (-trace already
// names the review-trace input file, so the enable flag differs from the
// other CLIs); -trace-out writes the retained spans on exit (.json =
// Chrome trace_event format for Perfetto).
//
// Each experiment prints an aligned text table with shape-check notes; see
// EXPERIMENTS.md for the mapping to the paper's figures. The
// observability flags attach a telemetry registry to the
// simulation-driven experiments: -metrics appends one JSONL snapshot per
// experiment, -metrics-listen serves /metrics (Prometheus text) plus
// net/http/pprof, and -cachestats / -respondstats print the design-cache
// and respond-memo counters each experiment accumulated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dyncontract/internal/engine"
	"dyncontract/internal/experiments"
	"dyncontract/internal/obs"
	"dyncontract/internal/synth"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runIDs     = fs.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale      = fs.String("scale", "small", "trace scale: small or paper")
		seed       = fs.Int64("seed", 42, "generation seed")
		traceFile  = fs.String("trace", "", "read the trace from this JSONL file instead of generating")
		list       = fs.Bool("list", false, "list available experiments and exit")
		m          = fs.Int("m", 0, "override the number of effort intervals (0 = default)")
		plot       = fs.Bool("plot", false, "render ASCII charts below figure-style reports")
		asJSON     = fs.Bool("json", false, "emit reports as JSON instead of text tables")
		outDir     = fs.String("out", "", "also write one report file per experiment into this directory")
		noCache    = fs.Bool("nocache", false, "disable the engine's cross-round design cache in simulation experiments")
		cacheStats = fs.Bool("cachestats", false, "report design-cache hits/misses per experiment")
		noMemo     = fs.Bool("nomemo", false, "disable the engine's cross-round best-response memo in simulation experiments")
		memoStats  = fs.Bool("respondstats", false, "report respond-memo hits/misses per experiment")
		respondPar = fs.Int("respond-parallel", 0, "respond-stage parallelism cap; 0 = GOMAXPROCS for memo misses, sequential otherwise")
		shards     = fs.Int("shards", 0, "shard count for the engine's sharded round pipeline; 0 = sequential (reports are identical)")
		shardStats = fs.Bool("shardstats", false, "report per-shard stage timings per experiment (needs -shards)")
		driftStats = fs.Bool("driftstats", false, "report sparse-drift scope counters per experiment")
		obsFlags   obs.Flags
		traceFlags obs.TraceFlags
	)
	obsFlags.Register(fs)
	traceFlags.RegisterNamed(fs, "spans") // -trace is the input trace file
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The registry outlives all experiments; -cachestats, -respondstats,
	// or -shardstats alone is enough to want one (the counters live there,
	// read back per run).
	var reg *telemetry.Registry
	if obsFlags.Enabled() || *cacheStats || *memoStats || *shardStats || *driftStats {
		reg = telemetry.NewRegistry()
	}
	sess, err := obsFlags.Start(reg)
	if err != nil {
		return err
	}
	defer sess.Close()
	if addr := sess.Addr(); addr != "" && !*asJSON {
		fmt.Fprintf(out, "metrics: serving http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Fprintf(out, "%-10s %s\n", e.ID, e.Abouts)
		}
		return nil
	}

	if *asJSON && *plot {
		return fmt.Errorf("-json and -plot are mutually exclusive")
	}
	var pipe *experiments.Pipeline
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return fmt.Errorf("open trace: %w", err)
		}
		defer f.Close()
		tr, err := trace.ReadJSONL(f)
		if err != nil {
			return fmt.Errorf("read trace: %w", err)
		}
		pipe, err = experiments.BuildPipelineFromTrace(tr, *seed)
		if err != nil {
			return err
		}
	} else {
		var cfg synth.Config
		switch *scale {
		case "small":
			cfg = synth.SmallScale(*seed)
		case "paper":
			cfg = synth.PaperScale(*seed)
		default:
			return fmt.Errorf("unknown scale %q (want small or paper)", *scale)
		}
		if !*asJSON {
			fmt.Fprintf(out, "generating %s-scale trace (seed %d)...\n", *scale, *seed)
		}
		pipe, err = experiments.BuildPipeline(cfg)
		if err != nil {
			return err
		}
	}
	if !*asJSON {
		fmt.Fprintf(out, "trace: %d reviews, %d workers, %d products; detected %d communities\n\n",
			len(pipe.Trace.Reviews), len(pipe.Trace.Workers), pipe.Trace.NumProducts(), len(pipe.Communities))
	}

	params := experiments.DefaultParams()
	if *m > 0 {
		params.M = *m
	}
	params.NoDesignCache = *noCache
	params.NoRespondMemo = *noMemo
	params.RespondParallelism = *respondPar
	params.Shards = *shards
	params.Metrics = reg

	ids := strings.Split(*runIDs, ",")
	if *runIDs == "all" {
		ids = nil
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	}
	tracer, recorder := traceFlags.Build()
	var prevCache engine.CacheStats
	var prevMemo engine.RespondStats
	var prevShard obs.ShardStats
	var prevDrift obs.DriftStats
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := experiments.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		// One span per experiment. The runners drive their engines on
		// their own contexts, so the span bounds the experiment without
		// engine-level children — run platformsim or contractd with -trace
		// for the full round/stage/shard nesting.
		span := tracer.Root("experiment." + id)
		rep, err := runner(pipe, params)
		span.End()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		// One JSONL snapshot per experiment (the CLI's flush interval),
		// and the same -cachestats line platformsim prints — here as the
		// delta this experiment added to the shared registry's counters.
		if err := sess.Flush(); err != nil {
			return err
		}
		if (*cacheStats || *memoStats || *shardStats || *driftStats) && !*asJSON {
			snap := reg.Snapshot()
			fmt.Fprintf(out, "%s:\n", id)
			if *cacheStats {
				cur := obs.CacheStatsFrom(snap)
				obs.FprintCacheStats(out, obs.DeltaCacheStats(prevCache, cur))
				prevCache = cur
			}
			if *memoStats {
				cur := obs.RespondStatsFrom(snap)
				obs.FprintRespondStats(out, obs.DeltaRespondStats(prevMemo, cur))
				prevMemo = cur
			}
			if *shardStats {
				// Experiments share one registry; the delta isolates this run.
				cur := obs.ShardStatsFrom(snap)
				obs.FprintShardStats(out, obs.DeltaShardStats(prevShard, cur))
				prevShard = cur
			}
			if *driftStats {
				cur := obs.DriftStatsFrom(snap)
				obs.FprintDriftStats(out, obs.DeltaDriftStats(prevDrift, cur))
				prevDrift = cur
			}
		}
		if *outDir != "" {
			if err := writeReportFiles(*outDir, rep); err != nil {
				return err
			}
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return fmt.Errorf("encode %s: %w", id, err)
			}
			continue
		}
		fmt.Fprintln(out, rep.Render(*plot))
	}
	if err := traceFlags.Export(recorder); err != nil {
		return err
	}
	if traceFlags.Out != "" && !*asJSON {
		fmt.Fprintf(out, "traces: wrote %s\n", traceFlags.Out)
	}
	return nil
}

// writeReportFiles persists one experiment's report as <id>.txt and
// <id>.json inside dir, creating it if needed.
func writeReportFiles(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", dir, err)
	}
	txtPath := filepath.Join(dir, rep.ID+".txt")
	if err := os.WriteFile(txtPath, []byte(rep.Render(true)), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", txtPath, err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", rep.ID, err)
	}
	jsonPath := filepath.Join(dir, rep.ID+".json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", jsonPath, err)
	}
	return nil
}
