package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"dyncontract/internal/spans"
	"dyncontract/internal/telemetry"
)

// tracedTestServer wires a fully traced server: always-sampled tracer,
// metrics, and a JSON logger writing into logBuf.
func tracedTestServer(t *testing.T) (*testServer, *spans.Recorder, *telemetry.Registry, *bytes.Buffer) {
	t.Helper()
	rec := spans.NewRecorder(16, 8)
	tracer := spans.New(spans.Config{Sample: 1, Seed: 11, Recorder: rec})
	reg := telemetry.NewRegistry()
	logBuf := &bytes.Buffer{}
	logger := slog.New(slog.NewJSONHandler(logBuf, nil))
	e := newTestServer(t, Config{Metrics: reg, Tracer: tracer, Logger: logger})
	return e, rec, reg, logBuf
}

// doTraced issues one JSON request carrying an X-Request-Id and returns
// the status, the echoed request ID, and the raw body.
func (e *testServer) doTraced(t *testing.T, method, path, reqID string, in any) (int, string, []byte) {
	t.Helper()
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != "" {
		req.Header.Set(spans.HeaderRequestID, reqID)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(spans.HeaderRequestID), raw
}

// fetchTrace retrieves one trace from /debug/traces by the same request-ID
// string the client sent.
func (e *testServer) fetchTrace(t *testing.T, reqID string) spans.Trace {
	t.Helper()
	code, _, raw := e.doTraced(t, "GET", "/debug/traces?id="+reqID, "", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/traces?id=%s: status %d (%s)", reqID, code, raw)
	}
	var tr spans.Trace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("decode trace: %v (%s)", err, raw)
	}
	return tr
}

// TestTracedRoundEndToEnd pins the acceptance nesting for a traced round:
// HTTP handler span → session queue wait → session execute → engine round
// → the four-plus pipeline stages → one design child per shard — all
// retrievable from /debug/traces by the client's own X-Request-Id, in
// both export formats, with the latency exemplar pointing back at the
// trace and the request log carrying the same ID.
func TestTracedRoundEndToEnd(t *testing.T) {
	e, _, reg, logBuf := tracedTestServer(t)

	req := testCreateReq()
	req.Shards = 2
	var created CreateSessionResponse
	if code := e.do(t, "POST", "/v1/sessions", &req, &created); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}

	const reqID = "client-round-trace-1"
	code, echoed, _ := e.doTraced(t, "POST", "/v1/sessions/"+created.ID+"/rounds", reqID,
		&AdvanceRoundRequest{})
	if code != http.StatusOK {
		t.Fatalf("advance round: status %d", code)
	}
	if echoed != reqID {
		t.Fatalf("X-Request-Id echoed %q, want the client's %q", echoed, reqID)
	}

	tr := e.fetchTrace(t, reqID)
	byParent := make(map[spans.SpanID][]spans.SpanData)
	byID := make(map[spans.SpanID]spans.SpanData)
	for _, sd := range tr.Spans {
		byParent[sd.Parent] = append(byParent[sd.Parent], sd)
		byID[sd.ID] = sd
	}
	root, ok := tr.Root()
	if !ok {
		t.Fatalf("trace has no root span: %+v", tr.Spans)
	}
	if root.Name != "http rounds_advance" {
		t.Fatalf("root span = %q, want %q", root.Name, "http rounds_advance")
	}
	rootAttrs := attrMap(root)
	if rootAttrs["status"] != "200" || rootAttrs["route"] != "rounds_advance" {
		t.Fatalf("root attrs = %v", rootAttrs)
	}

	// HTTP → session.queue + session.execute.
	names := func(sds []spans.SpanData) map[string]spans.SpanData {
		m := make(map[string]spans.SpanData, len(sds))
		for _, sd := range sds {
			m[sd.Name] = sd
		}
		return m
	}
	under := names(byParent[root.ID])
	queue, ok := under["session.queue"]
	if !ok {
		t.Fatalf("no session.queue span under root: %v", under)
	}
	if queue.End.Before(queue.Start) {
		t.Fatal("session.queue span never ended")
	}
	exec, ok := under["session.execute"]
	if !ok {
		t.Fatalf("no session.execute span under root: %v", under)
	}
	if attrMap(exec)["kind"] != "round" {
		t.Fatalf("execute attrs = %v", attrMap(exec))
	}

	// session.execute → engine.round → stages → per-shard design spans.
	round, ok := names(byParent[exec.ID])["engine.round"]
	if !ok {
		t.Fatalf("no engine.round under session.execute: %v", byParent[exec.ID])
	}
	stages := names(byParent[round.ID])
	for _, want := range []string{
		"engine.stage.design", "engine.stage.contracts", "engine.stage.respond",
		"engine.stage.settle", "engine.stage.observe",
	} {
		if _, ok := stages[want]; !ok {
			t.Fatalf("missing stage span %q (have %v)", want, stages)
		}
	}
	design := byParent[stages["engine.stage.design"].ID]
	if len(design) != 2 {
		t.Fatalf("got %d shard design spans, want 2", len(design))
	}
	for _, sd := range design {
		a := attrMap(sd)
		if sd.Name != "engine.shard.design" || a["shard"] == "" || a["drift"] == "" {
			t.Fatalf("shard design span %q attrs %v", sd.Name, a)
		}
	}

	// Chrome export of the same trace parses and carries events.
	ccode, _, craw := e.doTraced(t, "GET", "/debug/traces?id="+reqID+"&format=chrome", "", nil)
	if ccode != http.StatusOK {
		t.Fatalf("chrome format: status %d", ccode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(craw, &chrome); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	if len(chrome.TraceEvents) < len(tr.Spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(chrome.TraceEvents), len(tr.Spans))
	}

	// The route's latency exemplar points back at this trace.
	snap := reg.Snapshot()
	hist := snap.Histograms[telemetry.HTTPMetricPrefix+"rounds_advance"+telemetry.HTTPSuffixSeconds]
	if hist.ExemplarLabel != root.Trace.String() {
		t.Fatalf("latency exemplar = %q, want trace %s", hist.ExemplarLabel, root.Trace)
	}
	// The queue-wait histogram observed the command, exemplar included.
	wait := snap.Histograms[metricSessionQueueWait]
	if wait.Count == 0 || wait.ExemplarLabel != root.Trace.String() {
		t.Fatalf("queue wait: count=%d exemplar=%q", wait.Count, wait.ExemplarLabel)
	}

	// The request log line carries route, status, and the request ID.
	logs := logBuf.String()
	if !strings.Contains(logs, `"route":"rounds_advance"`) || !strings.Contains(logs, reqID) {
		t.Fatalf("request log missing route/trace: %s", logs)
	}
}

// TestTracedDesignBatchLink pins the batcher linkage: a traced design
// query's trace gains a session.design span whose batch.trace attribute
// names a retained design.batch carrier trace with the batch size.
func TestTracedDesignBatchLink(t *testing.T) {
	e, rec, _, _ := tracedTestServer(t)
	id := e.createSession(t)

	const reqID = "client-design-trace-1"
	code, _, _ := e.doTraced(t, "POST", "/v1/sessions/"+id+"/design", reqID,
		&DesignQueryRequest{AgentID: "h1"})
	if code != http.StatusOK {
		t.Fatalf("design query: status %d", code)
	}

	tr := e.fetchTrace(t, reqID)
	var design *spans.SpanData
	for i, sd := range tr.Spans {
		if sd.Name == "session.design" {
			design = &tr.Spans[i]
		}
	}
	if design == nil {
		t.Fatalf("no session.design span in trace: %+v", tr.Spans)
	}
	a := attrMap(*design)
	if a["agent"] != "h1" || a["batch.trace"] == "" || a["batch.span"] == "" {
		t.Fatalf("session.design attrs = %v", a)
	}
	carrierID, ok := spans.ParseTraceHeader(a["batch.trace"])
	if !ok {
		t.Fatalf("batch.trace %q does not parse", a["batch.trace"])
	}
	carrier, ok := rec.Lookup(carrierID)
	if !ok {
		t.Fatalf("carrier trace %s not retained", a["batch.trace"])
	}
	croot, ok := carrier.Root()
	if !ok || croot.Name != "design.batch" {
		t.Fatalf("carrier root = %+v", croot)
	}
	if attrMap(croot)["batch.size"] != "1" {
		t.Fatalf("carrier attrs = %v", attrMap(croot))
	}
}

// attrMap flattens a span's attributes for assertion.
func attrMap(sd spans.SpanData) map[string]string {
	m := make(map[string]string, len(sd.Attrs))
	for _, a := range sd.Attrs {
		m[a.Key] = a.Value
	}
	return m
}
