// Package trace defines the review-trace data model the evaluation runs
// on: reviews, workers with ground-truth labels, expert scores per product,
// and the derived per-worker statistics (§V "Dataset") that parameterize
// the contract-design pipeline:
//
//  1. feedback of a review = its positive upvotes;
//  2. expertise of a worker = average feedback over the worker's reviews;
//  3. length of a review = its character count;
//  4. effort level of a review = expertise × length.
//
// The package also provides CSV and JSONL codecs so traces round-trip
// through files (cmd/tracegen writes them, examples and experiments read
// them back).
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInvalid is returned for structurally invalid traces.
var ErrInvalid = errors.New("trace: invalid")

// Review is one crowdsourced product review.
type Review struct {
	// ID uniquely identifies the review.
	ID string `json:"id"`
	// WorkerID identifies the author.
	WorkerID string `json:"worker_id"`
	// ProductID identifies the reviewed product.
	ProductID string `json:"product_id"`
	// Score is the star rating in [1, 5].
	Score float64 `json:"score"`
	// Length is the review length in characters.
	Length int `json:"length"`
	// Upvotes is the number of positive ("helpful") endorsements — the
	// feedback q of the model.
	Upvotes int `json:"upvotes"`
	// Round is the 0-based task round the review belongs to.
	Round int `json:"round"`
}

// Validate checks a single review.
func (r Review) Validate() error {
	if r.ID == "" || r.WorkerID == "" || r.ProductID == "" {
		return fmt.Errorf("review %q: empty identifier: %w", r.ID, ErrInvalid)
	}
	if r.Score < 1 || r.Score > 5 || math.IsNaN(r.Score) {
		return fmt.Errorf("review %q: score %v outside [1,5]: %w", r.ID, r.Score, ErrInvalid)
	}
	if r.Length < 0 {
		return fmt.Errorf("review %q: negative length %d: %w", r.ID, r.Length, ErrInvalid)
	}
	if r.Upvotes < 0 {
		return fmt.Errorf("review %q: negative upvotes %d: %w", r.ID, r.Upvotes, ErrInvalid)
	}
	if r.Round < 0 {
		return fmt.Errorf("review %q: negative round %d: %w", r.ID, r.Round, ErrInvalid)
	}
	return nil
}

// Worker is a reviewer with its ground-truth label.
type Worker struct {
	// ID uniquely identifies the worker.
	ID string `json:"id"`
	// Malicious is the ground-truth label (true for both non-collusive and
	// collusive malicious workers).
	Malicious bool `json:"malicious"`
	// TargetProducts lists the products a malicious worker was hired to
	// promote; empty for honest workers. Two malicious workers sharing a
	// target are considered collusive (§IV-A).
	TargetProducts []string `json:"target_products,omitempty"`
}

// Validate checks a single worker record.
func (w Worker) Validate() error {
	if w.ID == "" {
		return fmt.Errorf("worker with empty ID: %w", ErrInvalid)
	}
	if !w.Malicious && len(w.TargetProducts) > 0 {
		return fmt.Errorf("worker %q: honest worker with targets: %w", w.ID, ErrInvalid)
	}
	return nil
}

// Trace is a complete review trace.
type Trace struct {
	// Reviews holds every review.
	Reviews []Review `json:"reviews"`
	// Workers maps worker ID to its record.
	Workers map[string]Worker `json:"workers"`
	// ExpertScores maps product ID to the experts' average review score
	// l̄ — the "ground truth" the requester measures accuracy against.
	ExpertScores map[string]float64 `json:"expert_scores"`
}

// Validate checks referential integrity of the whole trace.
func (t *Trace) Validate() error {
	if len(t.Workers) == 0 {
		return fmt.Errorf("no workers: %w", ErrInvalid)
	}
	for id, w := range t.Workers {
		if err := w.Validate(); err != nil {
			return err
		}
		if id != w.ID {
			return fmt.Errorf("worker map key %q != record ID %q: %w", id, w.ID, ErrInvalid)
		}
	}
	seen := make(map[string]bool, len(t.Reviews))
	for _, r := range t.Reviews {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.ID] {
			return fmt.Errorf("duplicate review ID %q: %w", r.ID, ErrInvalid)
		}
		seen[r.ID] = true
		if _, ok := t.Workers[r.WorkerID]; !ok {
			return fmt.Errorf("review %q references unknown worker %q: %w", r.ID, r.WorkerID, ErrInvalid)
		}
	}
	for p, s := range t.ExpertScores {
		if s < 1 || s > 5 || math.IsNaN(s) {
			return fmt.Errorf("expert score %v for product %q outside [1,5]: %w", s, p, ErrInvalid)
		}
	}
	return nil
}

// NumProducts returns the number of distinct products reviewed.
func (t *Trace) NumProducts() int {
	set := make(map[string]struct{})
	for _, r := range t.Reviews {
		set[r.ProductID] = struct{}{}
	}
	return len(set)
}

// WorkerStats are the derived per-worker quantities of §V.
type WorkerStats struct {
	// WorkerID identifies the worker.
	WorkerID string
	// Reviews is the number of reviews written.
	Reviews int
	// Expertise is the average upvotes over the worker's reviews.
	Expertise float64
	// AvgLength is the average review length.
	AvgLength float64
	// AvgFeedback equals Expertise (kept separate for readability at call
	// sites that mean "feedback", not "expertise").
	AvgFeedback float64
	// AvgEffort is the average per-review effort proxy
	// expertise × length.
	AvgEffort float64
	// AvgScore is the average review score.
	AvgScore float64
	// AvgAccuracyDist is the average |l_i − l̄| over reviews whose product
	// has an expert score (NaN when none do).
	AvgAccuracyDist float64
}

// ComputeWorkerStats derives per-worker statistics for every worker with at
// least one review. Results are keyed by worker ID.
func (t *Trace) ComputeWorkerStats() map[string]WorkerStats {
	byWorker := make(map[string][]Review)
	for _, r := range t.Reviews {
		byWorker[r.WorkerID] = append(byWorker[r.WorkerID], r)
	}
	out := make(map[string]WorkerStats, len(byWorker))
	for id, reviews := range byWorker {
		var upvotes, length, score float64
		var accDist float64
		var accN int
		for _, r := range reviews {
			upvotes += float64(r.Upvotes)
			length += float64(r.Length)
			score += r.Score
			if expert, ok := t.ExpertScores[r.ProductID]; ok {
				accDist += math.Abs(r.Score - expert)
				accN++
			}
		}
		n := float64(len(reviews))
		expertise := upvotes / n
		st := WorkerStats{
			WorkerID:    id,
			Reviews:     len(reviews),
			Expertise:   expertise,
			AvgLength:   length / n,
			AvgFeedback: expertise,
			AvgEffort:   expertise * (length / n),
			AvgScore:    score / n,
		}
		if accN > 0 {
			st.AvgAccuracyDist = accDist / float64(accN)
		} else {
			st.AvgAccuracyDist = math.NaN()
		}
		out[id] = st
	}
	return out
}

// EffortFeedbackPoints returns the (effort, feedback) point cloud for the
// given worker IDs — the input to effort-function fitting (§IV-B). One
// point per review: effort = worker expertise × review length, feedback =
// review upvotes.
func (t *Trace) EffortFeedbackPoints(workerIDs []string) (efforts, feedbacks []float64) {
	want := make(map[string]bool, len(workerIDs))
	for _, id := range workerIDs {
		want[id] = true
	}
	stats := t.ComputeWorkerStats()
	for _, r := range t.Reviews {
		if !want[r.WorkerID] {
			continue
		}
		st, ok := stats[r.WorkerID]
		if !ok {
			continue
		}
		efforts = append(efforts, st.Expertise*float64(r.Length))
		feedbacks = append(feedbacks, float64(r.Upvotes))
	}
	return efforts, feedbacks
}

// MaliciousWorkerIDs returns the IDs of all ground-truth malicious workers,
// sorted.
func (t *Trace) MaliciousWorkerIDs() []string {
	var out []string
	for id, w := range t.Workers {
		if w.Malicious {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// HonestWorkerIDs returns the IDs of all honest workers, sorted.
func (t *Trace) HonestWorkerIDs() []string {
	var out []string
	for id, w := range t.Workers {
		if !w.Malicious {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// WorkersWithAtLeast returns the sorted IDs of workers having at least n
// reviews — Fig. 8(a) selects "honest workers with at least 20 reviews".
func (t *Trace) WorkersWithAtLeast(n int) []string {
	counts := make(map[string]int)
	for _, r := range t.Reviews {
		counts[r.WorkerID]++
	}
	var out []string
	for id, c := range counts {
		if c >= n {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// FilterRounds returns a new trace containing only reviews from rounds in
// [from, to] (inclusive). Workers and expert scores are shared with the
// original (they are round-independent); callers binning a campaign by
// time use this to run the pipeline per period.
func (t *Trace) FilterRounds(from, to int) (*Trace, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("invalid round range [%d, %d]: %w", from, to, ErrInvalid)
	}
	out := &Trace{Workers: t.Workers, ExpertScores: t.ExpertScores}
	for _, r := range t.Reviews {
		if r.Round >= from && r.Round <= to {
			out.Reviews = append(out.Reviews, r)
		}
	}
	return out, nil
}

// Rounds returns the highest round index present plus one (0 for an empty
// trace).
func (t *Trace) Rounds() int {
	maxRound := -1
	for _, r := range t.Reviews {
		if r.Round > maxRound {
			maxRound = r.Round
		}
	}
	return maxRound + 1
}
