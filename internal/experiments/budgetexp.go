package experiments

import (
	"context"
	"fmt"

	"dyncontract/internal/budget"
	"dyncontract/internal/platform"
	"dyncontract/internal/textplot"
)

// budgetFractions sweep the per-round budget as fractions of the
// unconstrained policy's spend.
var budgetFractions = []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5}

// RunBudget evaluates the budget-feasible extension (related work [4],
// [5], [8]): the budgeted dynamic policy across a budget sweep, compared
// to the unconstrained dynamic policy's spend. Expected shapes: benefit is
// monotone in the budget with diminishing returns, the greedy MCKP tracks
// the exact DP closely, and the full-budget point recovers (at least) the
// unconstrained benefit.
func RunBudget(p *Pipeline, params Params) (*Report, error) {
	pop, err := p.BuildPopulation(params, 80)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Reference: the unconstrained dynamic policy's spend and benefit.
	free, err := platform.Simulate(ctx, pop, &platform.DynamicPolicy{}, 1, platform.Options{})
	if err != nil {
		return nil, fmt.Errorf("budget: unconstrained reference: %w", err)
	}
	refCost, refBenefit := free[0].Cost, free[0].Benefit
	if refCost <= 0 {
		return nil, fmt.Errorf("%w: unconstrained policy spends nothing", ErrPipeline)
	}

	rep := &Report{
		ID:     "budget",
		Title:  "budget-feasible contracts: benefit vs per-round budget (extension)",
		Header: []string{"budget", "frac-of-free-spend", "greedy-benefit", "dp-benefit", "greedy-cost"},
	}
	var xs, ys []float64
	monotone := true
	prevBenefit := -1.0
	for _, frac := range budgetFractions {
		b := frac * refCost
		greedyLedger, err := platform.Simulate(ctx, pop, &budget.Policy{Budget: b}, 1, platform.Options{})
		if err != nil {
			return nil, fmt.Errorf("budget: greedy B=%v: %w", b, err)
		}
		dpLedger, err := platform.Simulate(ctx, pop, &budget.Policy{Budget: b, UseDP: true, DPSteps: 3000}, 1, platform.Options{})
		if err != nil {
			return nil, fmt.Errorf("budget: dp B=%v: %w", b, err)
		}
		gb := greedyLedger[0].Benefit
		if gb < prevBenefit-1e-9 {
			monotone = false
		}
		prevBenefit = gb
		xs = append(xs, b)
		ys = append(ys, gb)
		rep.Rows = append(rep.Rows, []string{
			f2(b), f2(frac), f2(gb), f2(dpLedger[0].Benefit), f2(greedyLedger[0].Cost),
		})
	}
	rep.Series = []textplot.Series{{Name: "greedy benefit", X: xs, Y: ys}}
	rep.XLabel = "per-round budget B"
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"benefit is monotone in the budget: %v", monotone))
	last := ys[len(ys)-1]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"full budget recovers the unconstrained benefit (%.1f vs %.1f): %v",
		last, refBenefit, last >= refBenefit-1e-6))
	// Diminishing returns: the first half of the budget buys more than
	// the second half.
	mid := ys[3] // frac 0.5
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"diminishing returns (first half of budget buys more than the rest): %v",
		mid-ys[0] >= last-mid))
	return rep, nil
}
