package stats

import "testing"

// TestHistogramEdgeCases is the table-driven pin on the bucket-boundary
// convention's corners — the same convention internal/telemetry.Histogram
// reuses, so these cases double as the contract both packages share.
func TestHistogramEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		xs         []float64
		lo, hi     float64
		bins       int
		wantCounts []int
		wantTotal  int
	}{
		{
			name:       "empty sample",
			xs:         nil,
			lo:         0,
			hi:         1,
			bins:       4,
			wantCounts: []int{0, 0, 0, 0},
			wantTotal:  0,
		},
		{
			name:       "empty slice sample",
			xs:         []float64{},
			lo:         0,
			hi:         1,
			bins:       3,
			wantCounts: []int{0, 0, 0},
			wantTotal:  0,
		},
		{
			name:       "single bucket swallows everything",
			xs:         []float64{-100, 0, 0.5, 0.999, 1, 100},
			lo:         0,
			hi:         1,
			bins:       1,
			wantCounts: []int{6},
			wantTotal:  6,
		},
		{
			name:       "all-equal values land in one bin",
			xs:         []float64{2.5, 2.5, 2.5, 2.5, 2.5},
			lo:         0,
			hi:         10,
			bins:       4,
			wantCounts: []int{0, 5, 0, 0},
			wantTotal:  5,
		},
		{
			name:       "all equal to lo",
			xs:         []float64{0, 0, 0},
			lo:         0,
			hi:         1,
			bins:       2,
			wantCounts: []int{3, 0},
			wantTotal:  3,
		},
		{
			name:       "all equal to hi clamp into last bin",
			xs:         []float64{1, 1, 1},
			lo:         0,
			hi:         1,
			bins:       2,
			wantCounts: []int{0, 3},
			wantTotal:  3,
		},
		{
			name:       "bin boundary goes right",
			xs:         []float64{0.5},
			lo:         0,
			hi:         1,
			bins:       2,
			wantCounts: []int{0, 1},
			wantTotal:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := NewHistogram(tc.xs, tc.lo, tc.hi, tc.bins)
			if err != nil {
				t.Fatal(err)
			}
			if len(h.Counts) != len(tc.wantCounts) {
				t.Fatalf("bins = %d, want %d", len(h.Counts), len(tc.wantCounts))
			}
			for i, want := range tc.wantCounts {
				if h.Counts[i] != want {
					t.Errorf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], want, h.Counts)
				}
			}
			if got := h.Total(); got != tc.wantTotal {
				t.Errorf("Total = %d, want %d", got, tc.wantTotal)
			}
			fr := h.Fractions()
			var sum float64
			for _, f := range fr {
				sum += f
			}
			if tc.wantTotal == 0 {
				if sum != 0 {
					t.Errorf("empty histogram fractions sum to %v, want 0", sum)
				}
			} else if sum < 0.999999 || sum > 1.000001 {
				t.Errorf("fractions sum to %v, want 1", sum)
			}
		})
	}
}
