// Labeling: the contract framework on crowdsourced binary classification.
//
// Run with:
//
//	go run ./examples/labeling
//
// The paper's future work (§VII) proposes extending dynamic contracts from
// review tasks to classification. internal/classify does exactly that: a
// batch of items is seeded with gold questions; a worker's feedback is the
// number of gold answers it gets right (expected value concave in effort,
// so the §IV-C machinery applies verbatim); labels are aggregated by
// gold-accuracy-weighted majority vote. This example compares designed
// contracts against flat pay on a mixed honest/malicious labeler pool.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dyncontract/internal/classify"
	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("labeling: ")

	part, err := effort.NewPartition(10, 1)
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	task, err := classify.NewTask(rng, 500, 80, 0.4, 1, 1)
	if err != nil {
		log.Fatalf("task: %v", err)
	}
	fmt.Printf("task: %d items (%d gold), item value %.1f\n", len(task.Truth), task.Gold, task.ItemValue)

	var labelers []classify.Labeler
	for i := 0; i < 6; i++ {
		labelers = append(labelers, classify.Labeler{
			ID: fmt.Sprintf("h%02d", i), Class: worker.Honest,
			Curve: classify.DefaultCurve(), Beta: 0.2,
		})
	}
	for i := 0; i < 2; i++ {
		labelers = append(labelers, classify.Labeler{
			ID: fmt.Sprintf("m%02d", i), Class: worker.NonCollusiveMalicious,
			Curve: classify.DefaultCurve(), Beta: 0.2, Omega: 0.1, TargetBias: 0.8,
		})
	}
	fmt.Printf("labelers: %d honest + %d biased (push label 'true' on 80%% of items)\n\n", 6, 2)

	designed, err := classify.DesignContracts(labelers, task, part, 5)
	if err != nil {
		log.Fatalf("design: %v", err)
	}
	resDesigned, err := classify.RunBatch(rand.New(rand.NewSource(1)), labelers, task, designed, part)
	if err != nil {
		log.Fatalf("run designed: %v", err)
	}

	flat := make(map[string]*contract.PiecewiseLinear, len(labelers))
	for _, l := range labelers {
		psi, err := l.Curve.FeedbackPsi(task.Gold, part.YMax())
		if err != nil {
			log.Fatalf("psi: %v", err)
		}
		flat[l.ID], err = contract.Flat(psi.Eval(0), psi.Eval(part.YMax()), 1)
		if err != nil {
			log.Fatalf("flat: %v", err)
		}
	}
	resFlat, err := classify.RunBatch(rand.New(rand.NewSource(1)), labelers, task, flat, part)
	if err != nil {
		log.Fatalf("run flat: %v", err)
	}

	show := func(name string, res *classify.Result) {
		fmt.Printf("%s:\n", name)
		fmt.Printf("  %-6s %8s %9s %6s %8s\n", "worker", "effort", "accuracy", "gold", "pay")
		for _, oc := range res.PerWorker {
			fmt.Printf("  %-6s %8.3f %9.3f %4d/%d %8.3f\n",
				oc.ID, oc.Effort, oc.Accuracy, oc.GoldCorrect, task.Gold, oc.Compensation)
		}
		fmt.Printf("  aggregate accuracy %.3f, total pay %.2f, requester utility %.2f\n\n",
			res.AggregateAccuracy, res.TotalPay, res.RequesterUtility)
	}
	show("designed dynamic contracts", resDesigned)
	show("flat payment (1.0 per worker)", resFlat)

	fmt.Println("flat pay buys guessing; feedback-contingent contracts buy accuracy,")
	fmt.Println("and gold-weighted voting keeps the biased minority from swinging labels.")
}
