package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// reviewHeader is the column layout of the reviews CSV.
var reviewHeader = []string{"id", "worker_id", "product_id", "score", "length", "upvotes", "round"}

// workerHeader is the column layout of the workers CSV.
var workerHeader = []string{"id", "malicious", "target_products"}

// WriteReviewsCSV writes the trace's reviews as CSV with a header row.
func WriteReviewsCSV(w io.Writer, reviews []Review) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(reviewHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range reviews {
		rec := []string{
			r.ID, r.WorkerID, r.ProductID,
			strconv.FormatFloat(r.Score, 'g', -1, 64),
			strconv.Itoa(r.Length),
			strconv.Itoa(r.Upvotes),
			strconv.Itoa(r.Round),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write review %q: %w", r.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush reviews: %w", err)
	}
	return nil
}

// ReadReviewsCSV parses reviews from CSV written by WriteReviewsCSV.
func ReadReviewsCSV(r io.Reader) ([]Review, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(reviewHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, col := range reviewHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trace: column %d is %q, want %q: %w", i, header[i], col, ErrInvalid)
		}
	}
	var out []Review
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		score, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d score: %w", line, err)
		}
		length, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d length: %w", line, err)
		}
		upvotes, err := strconv.Atoi(rec[5])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d upvotes: %w", line, err)
		}
		round, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d round: %w", line, err)
		}
		review := Review{
			ID: rec[0], WorkerID: rec[1], ProductID: rec[2],
			Score: score, Length: length, Upvotes: upvotes, Round: round,
		}
		if err := review.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, review)
	}
	return out, nil
}

// WriteWorkersCSV writes worker records as CSV; target products are
// semicolon-joined.
func WriteWorkersCSV(w io.Writer, workers map[string]Worker) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(workerHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	ids := make([]string, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wk := workers[id]
		rec := []string{
			wk.ID,
			strconv.FormatBool(wk.Malicious),
			strings.Join(wk.TargetProducts, ";"),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write worker %q: %w", wk.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush workers: %w", err)
	}
	return nil
}

// ReadWorkersCSV parses worker records from CSV written by WriteWorkersCSV.
func ReadWorkersCSV(r io.Reader) (map[string]Worker, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(workerHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, col := range workerHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trace: column %d is %q, want %q: %w", i, header[i], col, ErrInvalid)
		}
	}
	out := make(map[string]Worker)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		malicious, err := strconv.ParseBool(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d malicious: %w", line, err)
		}
		var targets []string
		if rec[2] != "" {
			targets = strings.Split(rec[2], ";")
		}
		wk := Worker{ID: rec[0], Malicious: malicious, TargetProducts: targets}
		if err := wk.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if _, dup := out[wk.ID]; dup {
			return nil, fmt.Errorf("trace: line %d: duplicate worker %q: %w", line, wk.ID, ErrInvalid)
		}
		out[wk.ID] = wk
	}
	return out, nil
}

// WriteJSONL streams the trace as JSON Lines: one header object with the
// workers and expert scores, then one line per review. The format suits
// very large traces (reviews stream without buffering the whole slice).
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	head := struct {
		Workers      map[string]Worker  `json:"workers"`
		ExpertScores map[string]float64 `json:"expert_scores"`
	}{t.Workers, t.ExpertScores}
	if err := enc.Encode(head); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for _, r := range t.Reviews {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: encode review %q: %w", r.ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadJSONL parses a trace written by WriteJSONL and validates it.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var head struct {
		Workers      map[string]Worker  `json:"workers"`
		ExpertScores map[string]float64 `json:"expert_scores"`
	}
	if err := dec.Decode(&head); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	t := &Trace{Workers: head.Workers, ExpertScores: head.ExpertScores}
	for i := 0; ; i++ {
		var rv Review
		if err := dec.Decode(&rv); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode review %d: %w", i, err)
		}
		t.Reviews = append(t.Reviews, rv)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
