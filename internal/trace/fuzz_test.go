package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadReviewsCSV feeds arbitrary bytes through the reviews CSV parser:
// it must either error cleanly or produce reviews that re-serialize and
// re-parse to the same values (never panic, never accept invalid rows).
func FuzzReadReviewsCSV(f *testing.F) {
	f.Add("id,worker_id,product_id,score,length,upvotes,round\nr1,w1,p1,3.5,100,4,0\n")
	f.Add("id,worker_id,product_id,score,length,upvotes,round\n")
	f.Add("")
	f.Add("id,worker_id,product_id,score,length,upvotes,round\nr1,w1,p1,9,1,1,0\n")
	f.Add("a,b\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		reviews, err := ReadReviewsCSV(strings.NewReader(input))
		if err != nil {
			return // clean rejection is fine
		}
		for _, r := range reviews {
			if err := r.Validate(); err != nil {
				t.Fatalf("parser accepted invalid review %+v: %v", r, err)
			}
		}
		var buf bytes.Buffer
		if err := WriteReviewsCSV(&buf, reviews); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadReviewsCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(back) != len(reviews) {
			t.Fatalf("round trip changed count: %d vs %d", len(back), len(reviews))
		}
	})
}

// FuzzReadJSONL exercises the JSONL trace decoder the same way.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"workers":{"w1":{"id":"w1"}},"expert_scores":{}}` + "\n" +
		`{"id":"r1","worker_id":"w1","product_id":"p1","score":3,"length":1,"upvotes":0,"round":0}` + "\n")
	f.Add(`{"workers":{}}`)
	f.Add("not json at all")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the full validator.
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid trace: %v", err)
		}
	})
}
