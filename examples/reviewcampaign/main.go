// Reviewcampaign: the full paper pipeline on a synthetic review campaign.
//
// Run with:
//
//	go run ./examples/reviewcampaign
//
// A requester crowdsources product reviews; the worker pool mixes honest
// reviewers, lone fake-review writers, and paid collusion rings. The
// example mirrors §IV's strategy framework (Fig. 4): synthesize the trace,
// estimate malice, cluster collusive communities, fit per-class effort
// functions, build per-worker contracts, and simulate the marketplace —
// comparing the dynamic contract against excluding all suspects.
package main

import (
	"context"
	"fmt"
	"log"

	"dyncontract/internal/baseline"
	"dyncontract/internal/engine"
	"dyncontract/internal/experiments"
	"dyncontract/internal/platform"
	"dyncontract/internal/synth"
	"dyncontract/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reviewcampaign: ")

	// Stage 1-4: trace → malice estimates → communities → fitted ψ per
	// class, all bundled in the pipeline.
	pipe, err := experiments.BuildPipeline(synth.SmallScale(7))
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	fmt.Printf("trace: %d reviews by %d workers over %d products\n",
		len(pipe.Trace.Reviews), len(pipe.Trace.Workers), pipe.Trace.NumProducts())
	fmt.Printf("classified: %d honest, %d non-collusive malicious, %d collusive in %d communities\n",
		len(pipe.HonestIDs), len(pipe.NCMIDs), len(pipe.CMIDs), len(pipe.Communities))
	for cls, fit := range pipe.ClassFit {
		fmt.Printf("  fitted %v: %v (NoR %.2f)\n", cls, fit.Quadratic, fit.NoR)
	}

	// Stage 5: materialize the population and design contracts each round.
	params := experiments.DefaultParams()
	pop, err := pipe.BuildPopulation(params, 150)
	if err != nil {
		log.Fatalf("population: %v", err)
	}
	fmt.Printf("\nsimulating %d agents over 4 rounds...\n", len(pop.Agents))

	// Stage 6: run the marketplace on the engine. Each policy gets its own
	// design cache: workers fitted per class share effort functions, so a
	// whole class dedups to a handful of core.Design calls, and rounds
	// after the first are design-free.
	ctx := context.Background()
	for _, pol := range []platform.Policy{
		&platform.DynamicPolicy{},
		&baseline.ExcludeMalicious{Threshold: 0.5},
	} {
		cache := engine.NewCache()
		ledger, err := engine.RunLedger(ctx, pop, engine.Config{Policy: pol, Rounds: 4, Cache: cache})
		if err != nil {
			log.Fatalf("simulate %s: %v", pol.Name(), err)
		}
		total := platform.TotalUtility(ledger)
		fmt.Printf("\npolicy %-25s total utility %10.2f\n", pol.Name(), total)
		s := cache.Stats()
		fmt.Printf("  design cache: %d hits, %d misses over 4 rounds (%d distinct contracts)\n",
			s.Hits, s.Misses, s.Entries)

		// Who earned what, by class, in the last round?
		perClass := map[worker.Class][]float64{}
		for _, oc := range ledger[len(ledger)-1].Outcomes {
			if !oc.Excluded {
				comp := oc.Compensation
				if oc.Size > 1 {
					comp /= float64(oc.Size) // per-member share in a ring
				}
				perClass[oc.Class] = append(perClass[oc.Class], comp)
			}
		}
		for _, cls := range []worker.Class{worker.Honest, worker.NonCollusiveMalicious, worker.CollusiveMalicious} {
			comps := perClass[cls]
			if len(comps) == 0 {
				fmt.Printf("  %-28s excluded\n", cls)
				continue
			}
			var sum float64
			for _, c := range comps {
				sum += c
			}
			fmt.Printf("  %-28s avg pay %.3f (%d agents)\n", cls, sum/float64(len(comps)), len(comps))
		}
	}
	fmt.Println("\nthe dynamic contract keeps useful-but-biased workers at discounted pay;")
	fmt.Println("exclusion forfeits their feedback entirely — the Fig. 8(c) result.")
}
