package trace

import (
	"errors"
	"math"
	"testing"
)

func validTrace(t *testing.T) *Trace {
	t.Helper()
	tr := &Trace{
		Reviews: []Review{
			{ID: "r1", WorkerID: "w1", ProductID: "p1", Score: 4, Length: 100, Upvotes: 6, Round: 0},
			{ID: "r2", WorkerID: "w1", ProductID: "p2", Score: 5, Length: 200, Upvotes: 2, Round: 0},
			{ID: "r3", WorkerID: "w2", ProductID: "p1", Score: 5, Length: 50, Upvotes: 10, Round: 1},
		},
		Workers: map[string]Worker{
			"w1": {ID: "w1"},
			"w2": {ID: "w2", Malicious: true, TargetProducts: []string{"p1"}},
			"w3": {ID: "w3"},
		},
		ExpertScores: map[string]float64{"p1": 3.5, "p2": 5},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return tr
}

func TestReviewValidate(t *testing.T) {
	bad := []Review{
		{ID: "", WorkerID: "w", ProductID: "p", Score: 3},
		{ID: "r", WorkerID: "", ProductID: "p", Score: 3},
		{ID: "r", WorkerID: "w", ProductID: "", Score: 3},
		{ID: "r", WorkerID: "w", ProductID: "p", Score: 0},
		{ID: "r", WorkerID: "w", ProductID: "p", Score: 6},
		{ID: "r", WorkerID: "w", ProductID: "p", Score: math.NaN()},
		{ID: "r", WorkerID: "w", ProductID: "p", Score: 3, Length: -1},
		{ID: "r", WorkerID: "w", ProductID: "p", Score: 3, Upvotes: -1},
		{ID: "r", WorkerID: "w", ProductID: "p", Score: 3, Round: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("bad review %d: err = %v, want ErrInvalid", i, err)
		}
	}
	ok := Review{ID: "r", WorkerID: "w", ProductID: "p", Score: 3, Length: 10, Upvotes: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid review rejected: %v", err)
	}
}

func TestWorkerValidate(t *testing.T) {
	if err := (Worker{ID: ""}).Validate(); !errors.Is(err, ErrInvalid) {
		t.Error("empty ID accepted")
	}
	if err := (Worker{ID: "w", TargetProducts: []string{"p"}}).Validate(); !errors.Is(err, ErrInvalid) {
		t.Error("honest worker with targets accepted")
	}
	if err := (Worker{ID: "w", Malicious: true, TargetProducts: []string{"p"}}).Validate(); err != nil {
		t.Errorf("valid malicious worker rejected: %v", err)
	}
}

func TestTraceValidate(t *testing.T) {
	tr := validTrace(t)

	t.Run("duplicate review IDs", func(t *testing.T) {
		bad := *tr
		bad.Reviews = append(append([]Review(nil), tr.Reviews...), tr.Reviews[0])
		if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("err = %v, want ErrInvalid", err)
		}
	})
	t.Run("unknown worker", func(t *testing.T) {
		bad := *tr
		bad.Reviews = append(append([]Review(nil), tr.Reviews...),
			Review{ID: "rX", WorkerID: "ghost", ProductID: "p1", Score: 3})
		if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("err = %v, want ErrInvalid", err)
		}
	})
	t.Run("bad expert score", func(t *testing.T) {
		bad := *tr
		bad.ExpertScores = map[string]float64{"p1": 9}
		if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("err = %v, want ErrInvalid", err)
		}
	})
	t.Run("key mismatch", func(t *testing.T) {
		bad := *tr
		bad.Workers = map[string]Worker{"other": {ID: "w1"}}
		bad.Reviews = nil
		if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("err = %v, want ErrInvalid", err)
		}
	})
	t.Run("empty workers", func(t *testing.T) {
		bad := &Trace{}
		if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("err = %v, want ErrInvalid", err)
		}
	})
}

func TestNumProducts(t *testing.T) {
	if got := validTrace(t).NumProducts(); got != 2 {
		t.Errorf("NumProducts = %d, want 2", got)
	}
}

func TestComputeWorkerStats(t *testing.T) {
	tr := validTrace(t)
	stats := tr.ComputeWorkerStats()
	w1, ok := stats["w1"]
	if !ok {
		t.Fatal("w1 missing from stats")
	}
	if w1.Reviews != 2 {
		t.Errorf("w1.Reviews = %d, want 2", w1.Reviews)
	}
	if w1.Expertise != 4 { // (6+2)/2
		t.Errorf("w1.Expertise = %v, want 4", w1.Expertise)
	}
	if w1.AvgLength != 150 {
		t.Errorf("w1.AvgLength = %v, want 150", w1.AvgLength)
	}
	if w1.AvgEffort != 600 { // 4 * 150
		t.Errorf("w1.AvgEffort = %v, want 600", w1.AvgEffort)
	}
	if w1.AvgScore != 4.5 {
		t.Errorf("w1.AvgScore = %v, want 4.5", w1.AvgScore)
	}
	// |4-3.5| and |5-5| → avg 0.25.
	if math.Abs(w1.AvgAccuracyDist-0.25) > 1e-12 {
		t.Errorf("w1.AvgAccuracyDist = %v, want 0.25", w1.AvgAccuracyDist)
	}
	// Worker w3 wrote nothing: absent from stats.
	if _, ok := stats["w3"]; ok {
		t.Error("w3 (no reviews) present in stats")
	}
}

func TestComputeWorkerStatsNoExpertScores(t *testing.T) {
	tr := validTrace(t)
	tr.ExpertScores = nil
	stats := tr.ComputeWorkerStats()
	if !math.IsNaN(stats["w1"].AvgAccuracyDist) {
		t.Errorf("AvgAccuracyDist = %v, want NaN with no expert scores", stats["w1"].AvgAccuracyDist)
	}
}

func TestEffortFeedbackPoints(t *testing.T) {
	tr := validTrace(t)
	eff, fb := tr.EffortFeedbackPoints([]string{"w1"})
	if len(eff) != 2 || len(fb) != 2 {
		t.Fatalf("points = %d/%d, want 2/2", len(eff), len(fb))
	}
	// w1 expertise = 4; reviews have lengths 100, 200 → efforts 400, 800.
	if eff[0] != 400 || eff[1] != 800 {
		t.Errorf("efforts = %v, want [400 800]", eff)
	}
	if fb[0] != 6 || fb[1] != 2 {
		t.Errorf("feedbacks = %v, want [6 2]", fb)
	}
	// Unknown worker yields nothing.
	eff, fb = tr.EffortFeedbackPoints([]string{"ghost"})
	if len(eff) != 0 || len(fb) != 0 {
		t.Error("ghost worker produced points")
	}
}

func TestWorkerIDPartitions(t *testing.T) {
	tr := validTrace(t)
	honest := tr.HonestWorkerIDs()
	mal := tr.MaliciousWorkerIDs()
	if len(honest) != 2 || honest[0] != "w1" || honest[1] != "w3" {
		t.Errorf("honest = %v", honest)
	}
	if len(mal) != 1 || mal[0] != "w2" {
		t.Errorf("malicious = %v", mal)
	}
}

func TestWorkersWithAtLeast(t *testing.T) {
	tr := validTrace(t)
	if got := tr.WorkersWithAtLeast(2); len(got) != 1 || got[0] != "w1" {
		t.Errorf("WorkersWithAtLeast(2) = %v, want [w1]", got)
	}
	if got := tr.WorkersWithAtLeast(1); len(got) != 2 {
		t.Errorf("WorkersWithAtLeast(1) = %v, want 2 workers", got)
	}
	if got := tr.WorkersWithAtLeast(5); len(got) != 0 {
		t.Errorf("WorkersWithAtLeast(5) = %v, want none", got)
	}
}

func TestFilterRounds(t *testing.T) {
	tr := validTrace(t)
	// Fixture rounds: r1, r2 in round 0; r3 in round 1.
	sub, err := tr.FilterRounds(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Reviews) != 2 {
		t.Errorf("round-0 reviews = %d, want 2", len(sub.Reviews))
	}
	sub, err = tr.FilterRounds(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Reviews) != 1 || sub.Reviews[0].ID != "r3" {
		t.Errorf("round-1+ reviews = %+v", sub.Reviews)
	}
	if sub.NumProducts() != 1 {
		t.Errorf("NumProducts = %d, want 1", sub.NumProducts())
	}
	// Workers and expert scores are shared, not copied.
	if len(sub.Workers) != len(tr.Workers) {
		t.Error("workers not carried over")
	}
	if _, err := tr.FilterRounds(-1, 2); !errors.Is(err, ErrInvalid) {
		t.Error("negative from accepted")
	}
	if _, err := tr.FilterRounds(3, 1); !errors.Is(err, ErrInvalid) {
		t.Error("to < from accepted")
	}
}

func TestRounds(t *testing.T) {
	tr := validTrace(t)
	if got := tr.Rounds(); got != 2 {
		t.Errorf("Rounds = %d, want 2", got)
	}
	empty := &Trace{Workers: map[string]Worker{"w": {ID: "w"}}}
	if got := empty.Rounds(); got != 0 {
		t.Errorf("Rounds of empty = %d, want 0", got)
	}
}
