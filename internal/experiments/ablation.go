package experiments

import (
	"fmt"

	"dyncontract/internal/core"
	"dyncontract/internal/optimal"
	"dyncontract/internal/worker"
)

// ablationMs are the (necessarily small) partition sizes the grid search
// can afford.
var ablationMs = []int{2, 3, 4, 5}

// ablationGrid is the slope-grid resolution per piece.
const ablationGrid = 10

// RunAblation validates the near-optimality claim empirically: on small
// instances, compare the candidate algorithm's requester utility against an
// independent brute-force grid search over monotone piecewise-linear
// contracts (internal/optimal). The paper proves LB/UB bounds (Theorem
// 4.1); this experiment measures the actual gap.
func RunAblation(p *Pipeline, params Params) (*Report, error) {
	fit, ok := p.ClassFit[worker.Honest]
	if !ok {
		return nil, fmt.Errorf("%w: missing honest fit", ErrPipeline)
	}
	rep := &Report{
		ID:     "ablation",
		Title:  "designed contract vs brute-force grid optimum (single honest worker)",
		Header: []string{"m", "designed", "grid-optimum", "ratio", "upper-bound", "grid-evals"},
	}
	worst := 1.0
	for _, m := range ablationMs {
		part, err := p.Partition(m)
		if err != nil {
			return nil, err
		}
		a, err := worker.NewHonest("ablation-honest", fit.Quadratic, params.Beta, part.YMax())
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Part: part, Mu: params.Mu, W: 1}
		designed, err := core.Design(a, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation: design m=%d: %w", m, err)
		}
		grid, err := optimal.Search(a, cfg, optimal.Options{SlopeGrid: ablationGrid})
		if err != nil {
			return nil, fmt.Errorf("ablation: grid m=%d: %w", m, err)
		}
		ratio := 1.0
		if grid.RequesterUtility > 0 {
			ratio = designed.RequesterUtility / grid.RequesterUtility
		}
		if ratio < worst {
			worst = ratio
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", m),
			f3(designed.RequesterUtility),
			f3(grid.RequesterUtility),
			f3(ratio),
			f3(designed.UpperBound),
			fmt.Sprintf("%d", grid.Evaluated),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"worst designed/grid ratio: %.3f (near-optimal when close to 1; grid itself is only a lower bound on the true optimum)", worst))
	return rep, nil
}
