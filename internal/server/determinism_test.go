package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"dyncontract/internal/engine"
	"dyncontract/internal/platform"
)

// TestConcurrentClientsDeterministicLedger is the serving layer's
// acceptance test: N concurrent clients hammering one session with
// interleaved round advances and design queries must leave a ledger
// byte-identical to a bare sequential engine stepped the same number of
// rounds — concurrency changes throughput, never results.
func TestConcurrentClientsDeterministicLedger(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)

	const clients = 8
	const perClient = 4
	var rounds atomic.Int64
	agentIDs := []string{"h1", "h2", "m1", "c1"}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil); code == http.StatusOK {
					rounds.Add(1)
				} else if code != http.StatusTooManyRequests {
					t.Errorf("client %d round %d: status %d", c, j, code)
				}
				q := DesignQueryRequest{AgentID: agentIDs[(c+j)%len(agentIDs)]}
				if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &q, nil); code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("client %d design %d: status %d", c, j, code)
				}
			}
		}(c)
	}
	wg.Wait()
	r := int(rounds.Load())
	if r == 0 {
		t.Fatal("no rounds advanced")
	}

	var served []RoundJSON
	if code := e.do(t, "GET", "/v1/sessions/"+id+"/rounds", nil, &served); code != http.StatusOK {
		t.Fatalf("list rounds: status %d", code)
	}
	if len(served) != r {
		t.Fatalf("ledger has %d rounds, %d advances succeeded", len(served), r)
	}

	// The reference: a bare engine over an identical population, stepped r
	// times sequentially, converted through the same wire types.
	req := testCreateReq()
	pop, err := buildPopulation(&req)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := engine.RunLedger(context.Background(), pop, engine.Config{
		Policy: &platform.DynamicPolicy{},
		Rounds: r,
		Cache:  engine.NewCache(),
		Memo:   engine.NewRespondMemo(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]RoundJSON, len(ledger))
	for i, rd := range ledger {
		want[i] = roundJSON(rd, true)
	}

	got, err := json.Marshal(served)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Errorf("served ledger differs from bare engine over %d rounds:\n got %s\nwant %s", r, got, ref)
	}
}
