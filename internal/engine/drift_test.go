package engine_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// scopedDrift is the sparse-drift determinism sweep's mutation schedule:
// in-place parameter drift (weight, β, ψ, ω), a structural add, a
// structural remove, weight drift onto fresh fingerprints, and weight
// drift onto an already-cached fingerprint (the patch route under a
// fingerprint-pure policy) — every mutation declared through the
// provided declare callback, so the same schedule runs once with sparse
// Touch scopes and once with full Bump scopes.
func scopedDrift(tb testing.TB, declare func(pop *engine.Population, ids ...string)) func(int, *engine.Population) {
	tb.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2.1, 1, 40)
	if err != nil {
		tb.Fatal(err)
	}
	return func(round int, pop *engine.Population) {
		switch round {
		case 1:
			// In-place drift across all four mutable axes, on agents of
			// every class (ω stays 0 on honest agents — class-constrained).
			pop.Weights["h00000"] *= 1.02
			for _, a := range pop.Agents {
				switch a.ID {
				case "m00001":
					a.Beta *= 1.1
					a.Omega = 0.6
				case "c00002":
					a.Psi = psi
				}
			}
			declare(pop, "h00000", "m00001", "c00002")
		case 2:
			a, err := worker.NewHonest("zz-joined", psi, 1, pop.Part.YMax())
			if err != nil {
				panic(err)
			}
			pop.Agents = append(pop.Agents, a)
			pop.Weights[a.ID] = 0.9
			pop.MaliceProb[a.ID] = 0.1
			declare(pop, a.ID)
		case 3:
			gone := pop.Agents[0]
			pop.Agents = append(pop.Agents[:0], pop.Agents[1:]...)
			delete(pop.Weights, gone.ID)
			delete(pop.MaliceProb, gone.ID)
			declare(pop, gone.ID)
		case 4:
			pop.Weights["h00003"] *= 0.95
			pop.Weights["h00006"] *= 1.05
			declare(pop, "h00003", "h00006")
		case 5:
			// Drift onto a fingerprint another agent already holds
			// (h00003's from round 4): with a cache attached this is the
			// sparse patch route — contract served straight from the
			// cache, only this agent's outcome slot refreshed.
			pop.Weights["h00009"] = pop.Weights["h00003"]
			declare(pop, "h00009")
		}
		// Round 0: no mutation and no declaration — under a Drift hook an
		// undeclared round takes the legacy full-rebuild path.
	}
}

// TestSparseDriftLedgerIdentical is the drift-scope determinism pin: the
// same mutation schedule, declared sparsely (Population.Touch) and fully
// (Population.Bump), produces byte-identical ledgers across the
// sequential and sharded engines, with and without the respond memo —
// all equal to the sequential full-rebuild reference. Sparse scopes are
// an acceleration, never an observable behaviour change.
func TestSparseDriftLedgerIdentical(t *testing.T) {
	ctx := context.Background()
	const rounds = 6
	run := func(shards int, memo, sparse bool) []engine.Round {
		t.Helper()
		declare := func(pop *engine.Population, ids ...string) {
			if sparse {
				pop.Touch(ids...)
			} else {
				pop.Bump()
			}
		}
		cfg := engine.Config{
			Policy: &shardDesignPolicy{},
			Rounds: rounds,
			Drift:  scopedDrift(t, declare),
			Cache:  engine.NewCache(),
			Shards: shards,
		}
		if memo {
			cfg.Memo = engine.NewRespondMemo()
		}
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 30), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}

	// Reference: sequential, no cache or memo, full Bump declarations.
	ref, err := engine.RunLedger(ctx, archetypePopulation(t, 30), engine.Config{
		Policy: &designPolicy{},
		Rounds: rounds,
		Drift:  scopedDrift(t, func(pop *engine.Population, _ ...string) { pop.Bump() }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != rounds {
		t.Fatalf("reference ledger has %d rounds, want %d", len(ref), rounds)
	}
	for _, shards := range []int{0, 2, 8} {
		for _, memo := range []bool{true, false} {
			for _, sparse := range []bool{true, false} {
				name := fmt.Sprintf("shards=%d/memo=%v/sparse=%v", shards, memo, sparse)
				if got := run(shards, memo, sparse); !reflect.DeepEqual(got, ref) {
					t.Errorf("%s: ledger differs from full-rebuild reference", name)
				}
			}
		}
	}
}

// contractGrabber retains the contract served to one agent each round.
type contractGrabber struct {
	id   string
	last *contract.PiecewiseLinear
}

func (g *contractGrabber) OnContracts(_ int, cs map[string]*contract.PiecewiseLinear) {
	if c, ok := cs[g.id]; ok {
		g.last = c
	}
}
func (g *contractGrabber) OnOutcome(int, engine.AgentOutcome) {}
func (g *contractGrabber) OnRoundEnd(engine.Round) error      { return nil }

// TestSparseDriftShardSkips pins the sparse refresh mechanics on an
// instrumented sharded engine: a one-agent Touch rebuilds exactly the
// owning shard (counters say 1 rebuilt, shards−1 skipped, 1 agent
// touched), and the drifted agent's old fingerprint — which it alone
// held — is evicted from both the design cache and the respond memo,
// while the new fingerprint is present.
func TestSparseDriftShardSkips(t *testing.T) {
	ctx := context.Background()
	const (
		id     = "h00003"
		shards = 4
		oldW   = 0.77
		newW   = 0.88
	)
	pop := archetypePopulation(t, 12)
	pop.Weights[id] = oldW // unique weight → unique fingerprint
	var drifted *worker.Agent
	for _, a := range pop.Agents {
		if a.ID == id {
			drifted = a
		}
	}
	oldFP := engine.FingerprintOf(drifted, core.Config{Part: pop.Part, Mu: pop.Mu, W: oldW})
	newFP := engine.FingerprintOf(drifted, core.Config{Part: pop.Part, Mu: pop.Mu, W: newW})

	reg := telemetry.NewRegistry()
	cache := engine.NewCache()
	memo := engine.NewRespondMemo()
	grab := &contractGrabber{id: id}
	cfg := engine.Config{
		Policy:    &shardDesignPolicy{},
		Rounds:    1,
		Cache:     cache,
		Memo:      memo,
		Shards:    shards,
		Metrics:   reg,
		Observers: []engine.Observer{grab},
	}
	eng, err := engine.New(pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	oldContract := grab.last
	if oldContract == nil {
		t.Fatalf("no contract captured for %s", id)
	}
	if _, ok := cache.Get(oldFP); !ok {
		t.Fatalf("old fingerprint not cached after warm round")
	}
	if _, ok := memo.Get(oldFP, oldContract); !ok {
		t.Fatalf("old (fingerprint, contract) not memoized after warm round")
	}

	pop.Weights[id] = newW
	pop.Touch(id)
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counters[engine.MetricDriftTouchedAgents]; got != 1 {
		t.Errorf("touched agents = %d, want 1", got)
	}
	if got := s.Counters[engine.MetricDriftShardsRebuilt]; got != 1 {
		t.Errorf("shards rebuilt = %d, want 1", got)
	}
	if got := s.Counters[engine.MetricDriftShardsSkipped]; got != shards-1 {
		t.Errorf("shards skipped = %d, want %d", got, shards-1)
	}
	if h, ok := s.Histograms[engine.MetricDriftRebuildSeconds]; !ok || h.Count != 1 {
		t.Errorf("drift-rebuild timing observations = %+v, want 1 observation", h)
	}

	// Targeted invalidation: the dead fingerprint is gone from both
	// layers, the live one is served.
	if _, ok := cache.Get(oldFP); ok {
		t.Errorf("cache still holds the dead fingerprint after sparse drift")
	}
	if _, ok := cache.Get(newFP); !ok {
		t.Errorf("cache does not hold the drifted fingerprint")
	}
	if _, ok := memo.Get(oldFP, oldContract); ok {
		t.Errorf("memo still holds the dead fingerprint after sparse drift")
	}
}

// TestTouchUndeclaredSecondConsumer pins the shared-population fallback:
// a second engine over the same population cannot see the first engine's
// consumed scope, but the generation compare still forces it to rebuild
// — a Touch is never weaker than a Bump for secondary consumers.
func TestTouchUndeclaredSecondConsumer(t *testing.T) {
	ctx := context.Background()
	pop := archetypePopulation(t, 9)
	mk := func() (*engine.Engine, *engine.Ledger) {
		led := &engine.Ledger{}
		e, err := engine.New(pop, engine.Config{
			Policy:    &shardDesignPolicy{},
			Rounds:    1,
			Shards:    2,
			Observers: []engine.Observer{led},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e, led
	}
	first, firstLed := mk()
	second, secondLed := mk()
	for _, e := range []*engine.Engine{first, second} {
		if err := e.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}

	pop.Weights["h00000"] = 2
	pop.Touch("h00000")
	run := func(e *engine.Engine, led *engine.Ledger) engine.Round {
		t.Helper()
		if err := e.Step(ctx); err != nil {
			t.Fatal(err)
		}
		return led.Rounds[len(led.Rounds)-1]
	}
	a, b := run(first, firstLed), run(second, secondLed) // first consumes the scope; second sees only the generation
	if !reflect.DeepEqual(a, b) {
		t.Errorf("second consumer's round differs from the scope consumer's")
	}
	for _, oc := range b.Outcomes {
		if oc.AgentID == "h00000" && oc.Weight != 2 {
			t.Errorf("second consumer did not observe the drift: weight = %v, want 2", oc.Weight)
		}
	}
}
