// Package synth generates synthetic review traces calibrated to the
// published statistics of the paper's Amazon dataset ([13]; §V), which is
// proprietary. The generator reproduces every quantity the evaluation
// consumes:
//
//   - worker population: 18,176 honest, 1,312 non-collusive malicious, and
//     212 collusive malicious workers in 47 communities (PaperScale);
//   - Table II's collusive-community size distribution;
//   - ≈118k reviews over ≈75.5k products;
//   - Fig. 7's class profiles: similar effort levels across classes but
//     much higher feedback for collusive workers (partners upvote each
//     other);
//   - a concave effort→feedback relationship per class so the §IV-B
//     quadratic fits are meaningful.
//
// Generation is deterministic given Config.Seed.
package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dyncontract/internal/trace"
)

// ErrBadConfig is returned when a generator configuration fails validation.
var ErrBadConfig = errors.New("synth: invalid config")

// ClassShape controls the latent concave effort→feedback curve of one
// worker class: E[upvotes | latent effort y] = A·y − B·y², plus noise.
type ClassShape struct {
	// A is the linear gain of upvotes in latent effort.
	A float64
	// B is the concavity (diminishing returns); must keep the curve
	// increasing over the latent effort range.
	B float64
	// Noise is the standard deviation of the additive Gaussian noise.
	Noise float64
}

// Config parameterizes trace generation.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// Honest is the number of honest workers.
	Honest int
	// NonCollusive is the number of non-collusive malicious workers.
	NonCollusive int
	// CommunitySizes lists the size of each collusive community
	// (each ≥ 2); the total collusive worker count is the sum.
	CommunitySizes []int
	// Products is the size of the product catalogue.
	Products int
	// MeanReviews is the mean number of reviews per worker; counts are
	// 1 + Exponential(MeanReviews−1), giving the heavy tail Fig. 8(a)'s
	// "≥ 20 reviews" selection needs.
	MeanReviews float64
	// Rounds spreads reviews across task rounds (≥ 1).
	Rounds int
	// UpvoteProb is the probability a collusive partner upvotes a fellow
	// member's review — the mechanism behind Fig. 7's feedback gap.
	UpvoteProb float64
	// HonestShape, MaliciousShape control the latent feedback curves.
	HonestShape, MaliciousShape ClassShape
	// ScoreNoise is the honest reviewers' rating noise (std dev, stars).
	ScoreNoise float64
}

// PaperScale returns the full-size configuration matching the dataset
// statistics in §V: 19,700 workers (the paper's own class counts), 47
// communities with Table II's size distribution, and ≈118k reviews over a
// 75,508-product catalogue.
func PaperScale(seed int64) Config {
	return Config{
		Seed:           seed,
		Honest:         18176,
		NonCollusive:   1312,
		CommunitySizes: paperCommunitySizes(),
		Products:       75508,
		MeanReviews:    6,
		Rounds:         10,
		UpvoteProb:     0.8,
		HonestShape:    ClassShape{A: 2.0, B: 0.015, Noise: 1.2},
		MaliciousShape: ClassShape{A: 1.8, B: 0.013, Noise: 1.0},
		ScoreNoise:     0.5,
	}
}

// paperCommunitySizes reproduces Table II: 47 communities, 212 members,
// with fractions size-2 ≈ 51%, size-3 ≈ 22%, size-4 ≈ 7%, size-5 ≈ 2%,
// size-6 ≈ 10%, size ≥ 10 ≈ 5%.
func paperCommunitySizes() []int {
	sizes := make([]int, 0, 47)
	appendN := func(size, n int) {
		for i := 0; i < n; i++ {
			sizes = append(sizes, size)
		}
	}
	appendN(2, 24) // 48 workers
	appendN(3, 10) // 30
	appendN(4, 4)  // 16
	appendN(5, 1)  // 5
	appendN(6, 5)  // 30
	appendN(7, 1)  // 7
	appendN(38, 2) // 76 — the ">= 10" bucket
	return sizes   // 47 communities, 212 workers
}

// SmallScale returns a test-friendly configuration (hundreds of workers,
// seconds to generate) preserving the qualitative structure.
func SmallScale(seed int64) Config {
	return Config{
		Seed:           seed,
		Honest:         300,
		NonCollusive:   40,
		CommunitySizes: []int{2, 2, 2, 3, 3, 4, 6, 10},
		Products:       1200,
		MeanReviews:    6,
		Rounds:         5,
		UpvoteProb:     0.8,
		HonestShape:    ClassShape{A: 2.0, B: 0.015, Noise: 1.2},
		MaliciousShape: ClassShape{A: 1.8, B: 0.013, Noise: 1.0},
		ScoreNoise:     0.5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Honest < 0 || c.NonCollusive < 0 {
		return fmt.Errorf("negative worker counts: %w", ErrBadConfig)
	}
	if c.Honest+c.NonCollusive+len(c.CommunitySizes) == 0 {
		return fmt.Errorf("no workers at all: %w", ErrBadConfig)
	}
	total := 0
	for i, s := range c.CommunitySizes {
		if s < 2 {
			return fmt.Errorf("community %d has size %d (< 2): %w", i, s, ErrBadConfig)
		}
		total += s
	}
	minProducts := len(c.CommunitySizes) + c.NonCollusive
	if c.Products < minProducts || c.Products < 1 {
		return fmt.Errorf("products=%d too few (need >= %d for disjoint targets): %w",
			c.Products, minProducts, ErrBadConfig)
	}
	if !(c.MeanReviews >= 1) {
		return fmt.Errorf("meanReviews=%v must be >= 1: %w", c.MeanReviews, ErrBadConfig)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("rounds=%d must be >= 1: %w", c.Rounds, ErrBadConfig)
	}
	if c.UpvoteProb < 0 || c.UpvoteProb > 1 {
		return fmt.Errorf("upvoteProb=%v outside [0,1]: %w", c.UpvoteProb, ErrBadConfig)
	}
	for _, sh := range []ClassShape{c.HonestShape, c.MaliciousShape} {
		if sh.A <= 0 || sh.B < 0 || sh.Noise < 0 {
			return fmt.Errorf("class shape %+v invalid: %w", sh, ErrBadConfig)
		}
	}
	if c.ScoreNoise < 0 {
		return fmt.Errorf("scoreNoise=%v negative: %w", c.ScoreNoise, ErrBadConfig)
	}
	return nil
}

// Generate produces a trace from the configuration.
func Generate(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Product catalogue with latent qualities; experts' scores track the
	// latent quality closely.
	productIDs := make([]string, cfg.Products)
	quality := make([]float64, cfg.Products)
	expert := make(map[string]float64, cfg.Products)
	for i := range productIDs {
		productIDs[i] = fmt.Sprintf("p%06d", i)
		quality[i] = clamp(1+4*rng.Float64(), 1, 5)
		expert[productIDs[i]] = clamp(quality[i]+0.1*rng.NormFloat64(), 1, 5)
	}

	workers := make(map[string]trace.Worker)
	t := &trace.Trace{Workers: workers, ExpertScores: expert}

	// Reserve the front of the catalogue for disjoint malicious targets:
	// first one product per community, then one per non-collusive worker.
	// Honest (and filler) reviews draw from the whole catalogue, so target
	// products still receive organic reviews. Target products get mediocre
	// latent quality — manipulation campaigns promote products that do not
	// already rate highly — which is what makes promotional reviews
	// detectable (score far above the experts' consensus).
	next := 0
	takeProduct := func() string {
		id := productIDs[next]
		quality[next] = 1.5 + 1.8*rng.Float64()
		expert[id] = clamp(quality[next]+0.1*rng.NormFloat64(), 1, 5)
		next++
		return id
	}

	gen := &generator{cfg: cfg, rng: rng, trace: t, productIDs: productIDs, quality: quality}

	// Collusive communities.
	for ci, size := range cfg.CommunitySizes {
		target := takeProduct()
		memberIDs := make([]string, size)
		for mi := 0; mi < size; mi++ {
			id := fmt.Sprintf("cm%03d_%02d", ci, mi)
			memberIDs[mi] = id
			workers[id] = trace.Worker{ID: id, Malicious: true, TargetProducts: []string{target}}
		}
		gen.emitCommunityReviews(memberIDs, target, size)
	}

	// Non-collusive malicious workers, each with a private target.
	for i := 0; i < cfg.NonCollusive; i++ {
		id := fmt.Sprintf("ncm%05d", i)
		target := takeProduct()
		workers[id] = trace.Worker{ID: id, Malicious: true, TargetProducts: []string{target}}
		gen.emitWorkerReviews(id, target, cfg.MaliciousShape, 0)
	}

	// Honest workers.
	for i := 0; i < cfg.Honest; i++ {
		id := fmt.Sprintf("h%06d", i)
		workers[id] = trace.Worker{ID: id}
		gen.emitWorkerReviews(id, "", cfg.HonestShape, 0)
	}

	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated invalid trace: %w", err)
	}
	return t, nil
}

// generator carries shared state while emitting reviews.
type generator struct {
	cfg        Config
	rng        *rand.Rand
	trace      *trace.Trace
	productIDs []string
	quality    []float64
	reviewSeq  int
}

// reviewCount draws a heavy-tailed per-worker review count:
// 1 + Exponential with the configured mean.
func (g *generator) reviewCount() int {
	mean := g.cfg.MeanReviews - 1
	if mean <= 0 {
		return 1
	}
	return 1 + int(g.rng.ExpFloat64()*mean)
}

// latentEffort draws a worker's latent per-review effort, shared shape
// across classes (Fig. 7: effort levels are similar between classes).
func (g *generator) latentEffort() float64 {
	// Log-normal-ish positive effort with mean ≈ 20.
	return math.Exp(2.5 + 0.6*g.rng.NormFloat64())
}

// upvotesFor converts latent effort into upvotes via the class's concave
// curve plus noise, truncated at zero.
func (g *generator) upvotesFor(shape ClassShape, y float64) int {
	// Keep the concave curve increasing: clamp effort at the apex.
	if shape.B > 0 {
		if apex := shape.A / (2 * shape.B); y > apex {
			y = apex
		}
	}
	mean := shape.A*math.Sqrt(y) - shape.B*y // concave in y
	v := mean + shape.Noise*g.rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(v)
}

// lengthFor derives review length from latent effort with noise: longer
// reviews for higher effort (length is the paper's effort proxy input).
func (g *generator) lengthFor(y float64) int {
	l := int(y*20*(0.8+0.4*g.rng.Float64())) + 20
	if l < 1 {
		l = 1
	}
	return l
}

// emit appends one review.
func (g *generator) emit(workerID, productID string, score float64, length, upvotes int) {
	g.reviewSeq++
	g.trace.Reviews = append(g.trace.Reviews, trace.Review{
		ID:        fmt.Sprintf("r%08d", g.reviewSeq),
		WorkerID:  workerID,
		ProductID: productID,
		Score:     clamp(score, 1, 5),
		Length:    length,
		Upvotes:   upvotes,
		Round:     g.rng.Intn(g.cfg.Rounds),
	})
}

// emitWorkerReviews generates reviews for an individual worker. When
// target is non-empty the first review hits the target with a promotional
// (high) score; remaining reviews are organic.
func (g *generator) emitWorkerReviews(workerID, target string, shape ClassShape, extraUpvotes int) {
	n := g.reviewCount()
	for r := 0; r < n; r++ {
		y := g.latentEffort()
		length := g.lengthFor(y)
		upvotes := g.upvotesFor(shape, y) + extraUpvotes
		var productID string
		var score float64
		if r == 0 && target != "" {
			productID = target
			score = 4.5 + 0.5*g.rng.Float64() // promotional bias
		} else {
			idx := g.rng.Intn(len(g.productIDs))
			productID = g.productIDs[idx]
			// Filler reviews score honestly (noise only): malicious
			// workers blend in outside their campaign.
			score = g.quality[idx] + g.cfg.ScoreNoise*g.rng.NormFloat64()
		}
		g.emit(workerID, productID, score, length, upvotes)
	}
}

// emitCommunityReviews generates reviews for a collusive community: every
// member reviews the shared target with a promotional score and receives
// upvotes from partners (Binomial(size−1, UpvoteProb)), which inflates the
// community's feedback (Fig. 7), then writes organic filler reviews.
func (g *generator) emitCommunityReviews(memberIDs []string, target string, size int) {
	for _, id := range memberIDs {
		// Target review with collusive boost.
		y := g.latentEffort()
		boost := 0
		for p := 0; p < size-1; p++ {
			if g.rng.Float64() < g.cfg.UpvoteProb {
				boost++
			}
		}
		upvotes := g.upvotesFor(g.cfg.MaliciousShape, y) + boost
		g.emit(id, target, 4.5+0.5*g.rng.Float64(), g.lengthFor(y), upvotes)

		// Filler reviews, still collusively boosted (partners keep
		// upvoting each other wherever they post).
		n := g.reviewCount() - 1
		for r := 0; r < n; r++ {
			y := g.latentEffort()
			idx := g.rng.Intn(len(g.productIDs))
			score := g.quality[idx] + g.cfg.ScoreNoise*g.rng.NormFloat64()
			boost := 0
			for p := 0; p < size-1; p++ {
				if g.rng.Float64() < g.cfg.UpvoteProb/2 {
					boost++
				}
			}
			g.emit(id, g.productIDs[idx], score, g.lengthFor(y), g.upvotesFor(g.cfg.MaliciousShape, y)+boost)
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
