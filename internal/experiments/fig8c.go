package experiments

import (
	"context"
	"fmt"

	"dyncontract/internal/baseline"
	"dyncontract/internal/platform"
	"dyncontract/internal/textplot"
	"dyncontract/internal/worker"
)

// fig8cRounds is the number of simulated task rounds.
const fig8cRounds = 5

// fig8cMaxPerClass caps per-class population sizes (deterministic strided
// sample) so the simulation stays fast at paper scale.
const fig8cMaxPerClass = 200

// RunFig8c regenerates Fig. 8(c): the requester's utility under the
// dynamic contract versus the baseline that simply excludes every
// suspected-malicious worker. The paper's claim — the dynamic contract
// outperforms exclusion because biased-but-accurate malicious workers
// still carry positive weight, while hopeless ones are neutralized by
// near-zero weights anyway — is asserted in the notes. A fixed-payment
// policy is included as a second reference point.
func RunFig8c(p *Pipeline, params Params) (*Report, error) {
	pop, err := p.BuildPopulation(params, fig8cMaxPerClass)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	policies := []platform.Policy{
		&platform.DynamicPolicy{},
		&baseline.ExcludeMalicious{Threshold: 0.5},
		&baseline.FixedPayment{Amount: 1},
	}
	rep := &Report{
		ID:     "fig8c",
		Title:  fmt.Sprintf("requester utility over %d rounds: dynamic vs baselines (%d agents)", fig8cRounds, len(pop.Agents)),
		Header: []string{"policy", "total-utility", "per-round", "benefit", "cost"},
	}
	totals := make(map[string]float64, len(policies))
	for _, pol := range policies {
		ledger, err := runLedger(ctx, pop, pol, fig8cRounds, params)
		if err != nil {
			return nil, fmt.Errorf("fig8c: %s: %w", pol.Name(), err)
		}
		total := platform.TotalUtility(ledger)
		totals[pol.Name()] = total
		var benefit, cost float64
		rounds := make([]float64, 0, len(ledger))
		utilities := make([]float64, 0, len(ledger))
		for _, r := range ledger {
			benefit += r.Benefit
			cost += r.Cost
			rounds = append(rounds, float64(r.Index))
			utilities = append(utilities, r.Utility)
		}
		rep.Series = append(rep.Series, textplot.Series{Name: pol.Name(), X: rounds, Y: utilities})
		rep.Rows = append(rep.Rows, []string{
			pol.Name(), f2(total), f2(total / fig8cRounds), f2(benefit), f2(cost),
		})
	}
	rep.XLabel = "round"
	dyn := totals[policies[0].Name()]
	excl := totals[policies[1].Name()]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"dynamic contract beats exclude-all-malicious: %v (paper: our contract design outperforms the baseline)",
		dyn > excl))
	if excl != 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("dynamic/exclusion utility ratio: %.3f", dyn/excl))
	}
	return rep, nil
}

// BuildPopulation materializes a platform population from the pipeline:
// sampled honest and non-collusive malicious individuals plus every
// collusive community as a meta-agent, with Eq. (5) weights and estimated
// malice probabilities.
func (p *Pipeline) BuildPopulation(params Params, maxPerClass int) (*platform.Population, error) {
	part, err := p.Partition(params.M)
	if err != nil {
		return nil, err
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         params.Mu,
	}
	add := func(a *worker.Agent, w, malice float64) {
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = w
		pop.MaliceProb[a.ID] = malice
	}
	for _, id := range sampleIDs(p.HonestIDs, maxPerClass) {
		a, err := p.Agent(id, params, part)
		if err != nil {
			return nil, err
		}
		w, err := p.WorkerWeight(id, params)
		if err != nil {
			return nil, err
		}
		add(a, w, p.MaliceProb[id])
	}
	for _, id := range sampleIDs(p.NCMIDs, maxPerClass) {
		a, err := p.Agent(id, params, part)
		if err != nil {
			return nil, err
		}
		w, err := p.WorkerWeight(id, params)
		if err != nil {
			return nil, err
		}
		add(a, w, p.MaliceProb[id])
	}
	for ci, comm := range p.Communities {
		a, err := p.CommunityAgent(ci, params, part)
		if err != nil {
			return nil, err
		}
		var wSum, eSum float64
		for _, id := range comm.Members {
			w, err := p.WorkerWeight(id, params)
			if err != nil {
				return nil, err
			}
			wSum += w
			eSum += p.MaliceProb[id]
		}
		n := float64(comm.Size())
		add(a, wSum/n, eSum/n)
	}
	return pop, nil
}
