package dyncontract

import (
	"context"
	"testing"

	"dyncontract/internal/engine"
	"dyncontract/internal/platform"
	"dyncontract/internal/telemetry"
)

// BenchmarkTelemetryOverhead measures the cost of full instrumentation on
// the warmest, fastest round the engine has — a 1000-agent dedup-warm
// round where contract design is pure cache hits — so the telemetry share
// of the round is as large as it ever gets. The acceptance bar is ≤ 5%
// overhead for "registry" over "nop": per round the engine spends ~8
// monotonic clock reads, a handful of atomic stores, and one small
// observer dispatch, against ~1ms of simulation.
//
// The "nop" arm passes telemetry.Nop explicitly (not just a zero Config)
// to pin that a nil registry costs nothing beyond the nil check.
func BenchmarkTelemetryOverhead(b *testing.B) {
	pop := benchArchetypePopulation(b, 1000)
	ctx := context.Background()

	runWarm := func(b *testing.B, reg *telemetry.Registry) {
		b.Helper()
		cache := engine.NewCache()
		pol := &platform.DynamicPolicy{}
		cfg := engine.Config{Policy: pol, Rounds: 1, Cache: cache, Metrics: reg}
		if _, err := engine.RunLedger(ctx, pop, cfg); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunLedger(ctx, pop, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("nop", func(b *testing.B) {
		runWarm(b, telemetry.Nop)
	})
	b.Run("registry", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		runWarm(b, reg)
		b.StopTimer()
		if got := reg.Snapshot().Counters[engine.MetricRounds]; got == 0 {
			b.Fatal("instrumented arm recorded no rounds")
		}
	})
}
