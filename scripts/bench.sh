#!/bin/sh
# Engine benchmark runner (`make bench`): runs the round-loop benchmarks —
# BenchmarkEngineRound1k (design-dedup regimes) and
# BenchmarkTelemetryOverhead (instrumented vs telemetry.Nop) — with
# -benchmem, prints the standard output, and writes the parsed results to
# BENCH_engine.json as one JSON array of
#   {"name", "iterations", "ns_per_op", "bytes_per_op", "allocs_per_op"}
# objects, so the telemetry-overhead acceptance bar (≤5% on the warm round)
# can be checked from the file.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_engine.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkEngineRound1k|BenchmarkTelemetryOverhead' -benchmem . | tee "$raw"

awk '
BEGIN { print "["; n = 0 }
/^Benchmark/ {
	name = $1
	iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
