package adversary

import (
	"context"
	"fmt"
	"math"
	"testing"

	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/reputation"
	"dyncontract/internal/worker"
)

// advPopulation builds honest workers plus one malicious agent whose
// strategy the test controls.
func advPopulation(t *testing.T) *platform.Population {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < 3; i++ {
		a, err := worker.NewHonest(fmt.Sprintf("h%02d", i), psi, 1, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 1.5
		pop.MaliceProb[a.ID] = 0.05
	}
	m, err := worker.NewMalicious("attacker", psi, 1, 0.5, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	pop.Agents = append(pop.Agents, m)
	pop.Weights[m.ID] = 1.2 // initially believed useful
	pop.MaliceProb[m.ID] = 0.1
	return pop
}

func newScenario(t *testing.T, strat Strategy, withTracker bool) *Scenario {
	t.Helper()
	sc := &Scenario{
		Pop:        advPopulation(t),
		Strategies: map[string]Strategy{"attacker": strat},
	}
	if withTracker {
		tr, err := reputation.NewTracker(reputation.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sc.Tracker = tr
	}
	return sc
}

func TestStrategyNames(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{Myopic{}, "myopic"},
		{InfluenceMax{}, "influence-max"},
		{OnOff{Period: 4, Duty: 2}, "on-off(2/4)"},
		{Camouflage{Reveal: 3}, "camouflage(3)"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestAttackingSchedules(t *testing.T) {
	onoff := OnOff{Period: 3, Duty: 1}
	wantOnOff := []bool{true, false, false, true, false, false}
	for r, want := range wantOnOff {
		if got := onoff.Attacking(r); got != want {
			t.Errorf("OnOff.Attacking(%d) = %v, want %v", r, got, want)
		}
	}
	cam := Camouflage{Reveal: 2}
	for r, want := range []bool{false, false, true, true} {
		if got := cam.Attacking(r); got != want {
			t.Errorf("Camouflage.Attacking(%d) = %v, want %v", r, got, want)
		}
	}
	if (OnOff{}).Attacking(0) {
		t.Error("zero-period OnOff attacks")
	}
	if (Myopic{}).Attacking(0) || !(InfluenceMax{}).Attacking(99) {
		t.Error("constant schedules wrong")
	}
}

func TestMyopicMatchesPlatformDefault(t *testing.T) {
	// A scenario where everyone is (implicitly) Myopic must reproduce the
	// plain platform simulation exactly.
	sc := &Scenario{Pop: advPopulation(t)}
	got, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := platform.Simulate(context.Background(), advPopulation(t), &platform.DynamicPolicy{}, 2, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if math.Abs(got[r].Utility-want[r].Utility) > 1e-9 {
			t.Errorf("round %d: scenario utility %v != platform %v", r, got[r].Utility, want[r].Utility)
		}
	}
}

func TestInfluenceMaxPushesEffortToCap(t *testing.T) {
	sc := newScenario(t, InfluenceMax{}, false)
	ledger, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range ledger[0].Outcomes {
		if oc.AgentID != "attacker" {
			continue
		}
		// Cap is min(mδ=40, apex=50) = 40.
		if math.Abs(oc.Effort-40) > 1e-9 {
			t.Errorf("attacker effort = %v, want 40 (feasible max)", oc.Effort)
		}
	}
}

func TestTrackerRepricesOnOffAttacker(t *testing.T) {
	sc := newScenario(t, OnOff{Period: 2, Duty: 1}, true)
	initial := sc.Pop.Weights["attacker"]
	ledger, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ledger) != 6 {
		t.Fatalf("rounds = %d", len(ledger))
	}
	final := sc.Pop.Weights["attacker"]
	if final >= initial {
		t.Errorf("attacker weight did not fall: %v -> %v", initial, final)
	}
	if sc.Pop.MaliceProb["attacker"] <= 0.1 {
		t.Errorf("attacker malice estimate did not rise: %v", sc.Pop.MaliceProb["attacker"])
	}
}

func TestAdaptiveBeatsStaticAgainstCamouflage(t *testing.T) {
	// A camouflage attacker exploits static beliefs after revealing; the
	// adaptive tracker reprices it, so the requester's late-round
	// utilities must be at least as good.
	rounds := 8
	runScenario := func(withTracker bool) []platform.Round {
		sc := newScenario(t, Camouflage{Reveal: 3}, withTracker)
		ledger, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, rounds)
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}
	adaptive := runScenario(true)
	static := runScenario(false)
	var adaptiveLate, staticLate float64
	for r := 4; r < rounds; r++ {
		adaptiveLate += adaptive[r].Utility
		staticLate += static[r].Utility
	}
	if adaptiveLate < staticLate-1e-9 {
		t.Errorf("adaptive late utility %v < static %v", adaptiveLate, staticLate)
	}
}

func TestCamouflageLooksHonestEarly(t *testing.T) {
	sc := newScenario(t, Camouflage{Reveal: 5}, true)
	ledger, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = ledger
	// During camouflage the malice estimate must stay low.
	if got := sc.Tracker.MaliceProb("attacker"); got > 0.2 {
		t.Errorf("camouflaged attacker flagged early: malice %v", got)
	}
}

func TestScenarioValidate(t *testing.T) {
	sc := &Scenario{}
	if err := sc.Validate(); err == nil {
		t.Error("nil population accepted")
	}
	sc = &Scenario{
		Pop:        advPopulation(t),
		Strategies: map[string]Strategy{"ghost": Myopic{}},
	}
	if err := sc.Validate(); err == nil {
		t.Error("strategy for unknown agent accepted")
	}
	sc = &Scenario{Pop: advPopulation(t), AttackDist: -1}
	if err := sc.Validate(); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestScenarioWithExclusionPolicy(t *testing.T) {
	// The tracker's rising malice estimate eventually pushes the attacker
	// over an exclusion threshold when used with the baseline policy; the
	// scenario must run cleanly either way.
	sc := newScenario(t, InfluenceMax{}, true)
	ledger, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ledger) != 4 {
		t.Fatalf("rounds = %d", len(ledger))
	}
	if sc.Pop.MaliceProb["attacker"] < 0.5 {
		t.Errorf("persistent attacker's malice estimate %v still below 0.5 after 4 rounds",
			sc.Pop.MaliceProb["attacker"])
	}
}

func TestCollusiveRingStrategy(t *testing.T) {
	// A collusive community meta-agent can be strategic too: an on-off
	// ring that pumps feedback in bursts. The tracker must catch it.
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := &platform.Population{
		Weights:    map[string]float64{},
		MaliceProb: map[string]float64{},
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < 4; i++ {
		a, err := worker.NewHonest(fmt.Sprintf("h%02d", i), psi, 1, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 1.5
		pop.MaliceProb[a.ID] = 0.05
	}
	ring, err := worker.NewCommunity("ring", psi, 1, 0.5, 4, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	pop.Agents = append(pop.Agents, ring)
	pop.Weights[ring.ID] = 1.0
	pop.MaliceProb[ring.ID] = 0.3

	tracker, err := reputation.NewTracker(reputation.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{
		Pop:        pop,
		Strategies: map[string]Strategy{"ring": OnOff{Period: 2, Duty: 1}},
		Tracker:    tracker,
	}
	ledger, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, 6)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ledger) != 6 {
		t.Fatalf("rounds = %d", len(ledger))
	}
	if sc.Pop.MaliceProb["ring"] <= 0.3 {
		t.Errorf("ring malice estimate %v did not rise", sc.Pop.MaliceProb["ring"])
	}
	if sc.Pop.Weights["ring"] >= 1.0 {
		t.Errorf("ring weight %v did not fall", sc.Pop.Weights["ring"])
	}
}
