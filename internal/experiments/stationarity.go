package experiments

import (
	"fmt"
	"math"

	"dyncontract/internal/effort"
	"dyncontract/internal/replay"
)

// RunStationarity validates an assumption the paper leaves implicit: the
// effort functions are fitted once from the whole trace and reused every
// round, which is only sound if worker behaviour is stationary across
// rounds. The experiment splits the trace into early and late halves,
// fits the honest-class ψ on each, and cross-scores: each half's fit is
// calibrated against the *other* half's observations. Expected shape:
// coefficients agree across halves and cross-half skill stays close to
// same-half skill.
func RunStationarity(p *Pipeline, _ Params) (*Report, error) {
	rounds := p.Trace.Rounds()
	if rounds < 2 {
		return nil, fmt.Errorf("%w: need >= 2 rounds, trace has %d", ErrPipeline, rounds)
	}
	mid := rounds / 2
	early, err := p.Trace.FilterRounds(0, mid-1)
	if err != nil {
		return nil, err
	}
	late, err := p.Trace.FilterRounds(mid, rounds-1)
	if err != nil {
		return nil, err
	}

	honest := p.HonestIDs
	fitHalf := func(tr interface {
		EffortFeedbackPoints([]string) ([]float64, []float64)
	}) (effort.Quadratic, []float64, []float64, error) {
		raw, fb := tr.EffortFeedbackPoints(honest)
		efforts := make([]float64, len(raw))
		for i, y := range raw {
			efforts[i] = y / p.EffortScale
		}
		res, err := effort.FitConcaveQuadratic(efforts, fb)
		if err != nil {
			return effort.Quadratic{}, nil, nil, fmt.Errorf("stationarity fit: %w", err)
		}
		return res.Quadratic, efforts, fb, nil
	}

	earlyPsi, earlyEff, earlyFb, err := fitHalf(early)
	if err != nil {
		return nil, err
	}
	latePsi, lateEff, lateFb, err := fitHalf(late)
	if err != nil {
		return nil, err
	}

	score := func(psi effort.Quadratic, eff, fb []float64) (replay.Calibration, error) {
		return replay.Score(psi, eff, fb)
	}
	earlyOnLate, err := score(earlyPsi, lateEff, lateFb)
	if err != nil {
		return nil, err
	}
	lateOnLate, err := score(latePsi, lateEff, lateFb)
	if err != nil {
		return nil, err
	}
	lateOnEarly, err := score(latePsi, earlyEff, earlyFb)
	if err != nil {
		return nil, err
	}
	earlyOnEarly, err := score(earlyPsi, earlyEff, earlyFb)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "stationarity",
		Title:  "cross-round stability of the fitted effort function (extension)",
		Header: []string{"fit", "r2", "r1", "r0", "same-half-skill", "cross-half-skill"},
		Rows: [][]string{
			{"early half", f3(earlyPsi.R2), f3(earlyPsi.R1), f3(earlyPsi.R0), f3(earlyOnEarly.Skill()), f3(earlyOnLate.Skill())},
			{"late half", f3(latePsi.R2), f3(latePsi.R1), f3(latePsi.R0), f3(lateOnLate.Skill()), f3(lateOnEarly.Skill())},
		},
	}
	// Shape 1: slopes agree within 25%.
	slopeAgree := math.Abs(earlyPsi.R1-latePsi.R1) <= 0.25*math.Max(earlyPsi.R1, latePsi.R1)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"fitted slopes agree across halves (%.3f vs %.3f): %v", earlyPsi.R1, latePsi.R1, slopeAgree))
	// Shape 2: cross-half skill within 0.1 of same-half skill.
	transfer := earlyOnLate.Skill() >= lateOnLate.Skill()-0.1 &&
		lateOnEarly.Skill() >= earlyOnEarly.Skill()-0.1
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"fits transfer across rounds (cross-half skill within 0.1 of same-half): %v (behaviour is stationary; fitting once is sound)", transfer))
	return rep, nil
}
