package telemetry

import (
	"net/http"
)

// HTTP route metrics. InstrumentHandler wraps an http.Handler so every
// request observes one latency sample and one status-class count under the
// route's name:
//
//	dyncontract_http_<route>_seconds            latency histogram
//	dyncontract_http_<route>_requests_total     all requests
//	dyncontract_http_<route>_status_2xx_total   per status class (2xx-5xx)
//	dyncontract_http_<route>_rejected_total     429 Too Many Requests
//
// 429s count in both _status_4xx_total and _rejected_total: the former
// keeps the status classes exhaustive, the latter is the backpressure
// signal dashboards alert on.
const (
	// HTTPMetricPrefix starts every route metric name.
	HTTPMetricPrefix = "dyncontract_http_"
	// HTTPSuffixSeconds ends the latency histogram's name; stat readers
	// (internal/obs) recover route names by trimming prefix and suffix.
	HTTPSuffixSeconds  = "_seconds"
	HTTPSuffixRequests = "_requests_total"
	HTTPSuffixRejected = "_rejected_total"
	HTTPSuffix2xx      = "_status_2xx_total"
	HTTPSuffix3xx      = "_status_3xx_total"
	HTTPSuffix4xx      = "_status_4xx_total"
	HTTPSuffix5xx      = "_status_5xx_total"
)

// Latency bucket layout: 10ms resolution over [0, 2.5s). Serving-path
// requests beyond 2.5s clamp into the last bin — at that point the exact
// tail no longer matters, only that it is on fire.
const (
	httpSecondsLo   = 0
	httpSecondsHi   = 2.5
	httpSecondsBins = 250
)

// MetricNameComponent maps s into the metric-name alphabet
// [a-zA-Z0-9_:], replacing every other byte with '_' and prefixing a
// leading digit with '_', so arbitrary route strings can be embedded in
// metric names without tripping the registry's validation panic.
func MetricNameComponent(s string) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			continue
		default:
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		b = append([]byte{'_'}, b...)
	}
	return string(b)
}

// statusWriter records the status code a handler writes; an implicit 200
// (body written without WriteHeader) is recorded as such.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// instrumented handlers keep flush/deadline support.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// InstrumentHandler wraps next with per-route request metrics under the
// given route name (sanitized through MetricNameComponent). A nil registry
// returns next unchanged — nil is off, as everywhere in this package.
// Handles are resolved once here, so the per-request cost is one timer,
// one histogram observe, and two counter increments.
func InstrumentHandler(reg *Registry, route string, next http.Handler) http.Handler {
	return InstrumentHandlerExemplar(reg, route, next, nil)
}

// InstrumentHandlerExemplar is InstrumentHandler plus exemplar linkage:
// when exemplar is non-nil, each request's latency observation carries
// the label exemplar(r) returns (empty label → plain observation), and
// the histogram retains the label of its worst sample — see
// Histogram.ObserveExemplar. The callback keeps this package free of a
// tracing dependency: the server passes a closure that reads the request
// context's span and returns its trace ID.
func InstrumentHandlerExemplar(reg *Registry, route string, next http.Handler, exemplar func(*http.Request) string) http.Handler {
	if reg == nil {
		return next
	}
	name := HTTPMetricPrefix + MetricNameComponent(route)
	var (
		lat      = reg.Histogram(name+HTTPSuffixSeconds, httpSecondsLo, httpSecondsHi, httpSecondsBins)
		requests = reg.Counter(name + HTTPSuffixRequests)
		rejected = reg.Counter(name + HTTPSuffixRejected)
		classes  = [4]*Counter{
			reg.Counter(name + HTTPSuffix2xx),
			reg.Counter(name + HTTPSuffix3xx),
			reg.Counter(name + HTTPSuffix4xx),
			reg.Counter(name + HTTPSuffix5xx),
		}
	)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		timer := StartTimer()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if exemplar != nil {
			lat.ObserveExemplar(timer.Seconds(), exemplar(r))
		} else {
			lat.Observe(timer.Seconds())
		}
		requests.Inc()
		if cls := sw.status/100 - 2; cls >= 0 && cls < len(classes) {
			classes[cls].Inc()
		}
		if sw.status == http.StatusTooManyRequests {
			rejected.Inc()
		}
	})
}
