package engine

import (
	"sync"
	"sync/atomic"

	"dyncontract/internal/core"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// Fingerprint identifies a contract-design problem up to equality of its
// inputs: everything core.Design reads from the agent and the config. Two
// agents with equal fingerprints receive the same designed contract, so
// populations drawn from a handful of archetypes collapse to a handful of
// core.Design calls per round.
//
// Size is deliberately absent: the community size never enters the design
// (a community's ψ already aggregates its members' effort), so communities
// of different sizes sharing parameters still share a contract.
type Fingerprint struct {
	// Class is the behavioural class (it constrains ω in validation).
	Class worker.Class
	// R2, R1, R0 are the agent's ψ coefficients.
	R2, R1, R0 float64
	// Beta, Omega, Reservation are the agent's utility parameters.
	Beta, Omega, Reservation float64
	// M, Delta describe the effort partition.
	M int
	// Delta is the partition's interval width δ.
	Delta float64
	// Mu, W are the requester-side weights of the design config.
	Mu, W float64
}

// FingerprintOf computes the design fingerprint of one decomposed
// subproblem.
func FingerprintOf(a *worker.Agent, cfg core.Config) Fingerprint {
	return Fingerprint{
		Class:       a.Class,
		R2:          a.Psi.R2,
		R1:          a.Psi.R1,
		R0:          a.Psi.R0,
		Beta:        a.Beta,
		Omega:       a.Omega,
		Reservation: a.Reservation,
		M:           cfg.Part.M,
		Delta:       cfg.Part.Delta,
		Mu:          cfg.Mu,
		W:           cfg.W,
	}
}

// CacheStats is a snapshot of a cache's counters.
type CacheStats struct {
	// Hits counts fingerprint lookups served from the cache — each one a
	// core.Design call that did not happen.
	Hits uint64
	// Misses counts lookups that required a fresh core.Design call.
	Misses uint64
	// Entries is the number of distinct fingerprints currently held.
	Entries int
}

// defaultCacheCap bounds the entry map: weight drift mints a new
// fingerprint per (agent, weight) pair, so a long adaptive run would grow
// without bound. Crossing the cap flushes the whole map (the next round
// repopulates the live fingerprints); counters are preserved.
const defaultCacheCap = 1 << 16

// Cache is a deduplicating design cache keyed by Fingerprint. It is safe
// for concurrent use; the zero value is ready to use.
//
// Correctness is automatic: every input core.Design reads is part of the
// key, so mutating an agent or shifting a weight simply misses and
// redesigns. Invalidate exists for explicit control over memory and for
// callers that want a cold start (benchmark baselines, A/B comparisons).
type Cache struct {
	// MaxEntries caps the map; 0 means the package default (65536).
	MaxEntries int

	mu      sync.RWMutex
	entries map[Fingerprint]*core.Result
	// hits/misses are telemetry counters so a registry can adopt them
	// directly (ExportTo); Stats() stays a thin view over the same
	// atomics, with or without a registry attached.
	hits   telemetry.Counter
	misses telemetry.Counter
	// size mirrors len(entries) into the registry; nil (a no-op gauge)
	// until ExportTo attaches one. Guarded by mu.
	size *telemetry.Gauge
	// gen counts whole-map drops (Invalidate and cap flushes). Segments
	// compare it against their own snapshot to clear their local maps
	// lazily, so an Invalidate on the shared cache reaches every segment
	// without the cache knowing who they are.
	gen atomic.Uint64
}

// NewCache returns an empty cache with the default size cap.
func NewCache() *Cache { return &Cache{} }

// Get looks up a fingerprint, counting a hit or a miss.
func (c *Cache) Get(fp Fingerprint) (*core.Result, bool) {
	c.mu.RLock()
	res, ok := c.entries[fp]
	c.mu.RUnlock()
	if ok {
		c.hits.Inc()
		return res, true
	}
	c.misses.Inc()
	return nil, false
}

// Put stores a design result under its fingerprint, flushing the map first
// if it would exceed the cap.
func (c *Cache) Put(fp Fingerprint, res *core.Result) {
	if res == nil {
		return
	}
	max := c.MaxEntries
	if max <= 0 {
		max = defaultCacheCap
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[Fingerprint]*core.Result)
	} else if len(c.entries) >= max {
		c.entries = make(map[Fingerprint]*core.Result)
		c.gen.Add(1)
	}
	c.entries[fp] = res
	c.size.Set(float64(len(c.entries)))
	c.mu.Unlock()
}

// Remove drops exactly the named fingerprints from the shared table — the
// targeted-invalidation half of a sparse drift: the engine refcounts
// fingerprints across its shard views and removes only those whose last
// holder drifted away, so shared designs survive. Remove deliberately does
// not bump the segment generation: a removed fingerprint can linger in a
// segment's local map, but a fingerprint fully determines its design, so
// serving the retained result stays exact — the removal is about bounding
// memory, not correctness. One caveat for shared caches: fingerprints
// minted outside the engine's views (the server's design probes) are not
// refcounted, so a removal can evict an entry such callers still want;
// they re-solve once and repopulate. Counters are preserved.
func (c *Cache) Remove(fps ...Fingerprint) {
	if len(fps) == 0 {
		return
	}
	c.mu.Lock()
	for _, fp := range fps {
		delete(c.entries, fp)
	}
	c.size.Set(float64(len(c.entries)))
	c.mu.Unlock()
}

// Invalidate drops every cached design. Call it when beliefs shift through
// state the fingerprint cannot see (there is none today — weights, ψ, and
// cost parameters are all keyed) or to force a cold redesign. Counters are
// preserved.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.entries = nil
	c.size.Set(0)
	c.gen.Add(1)
	c.mu.Unlock()
}

// Stats returns a snapshot of the hit/miss counters and current size. It
// is a thin view over the cache's live telemetry counters — the same
// atomics a registry adopts through ExportTo — so printed stats and
// scraped metrics can never disagree.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Value(), Misses: c.misses.Value(), Entries: n}
}

// ExportTo registers the cache's live hit/miss counters in reg under the
// MetricCache* names and attaches an entries gauge that tracks the map
// size from then on. Engines wire this automatically when both
// Config.Cache and Config.Metrics are set. Exporting a second cache to
// the same registry re-points the registered names at the newer cache
// (telemetry's replacement semantics); a nil registry is a no-op.
func (c *Cache) ExportTo(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(MetricCacheHits, &c.hits)
	reg.RegisterCounter(MetricCacheMisses, &c.misses)
	size := reg.Gauge(MetricCacheEntries)
	c.mu.Lock()
	c.size = size
	c.size.Set(float64(len(c.entries)))
	c.mu.Unlock()
}

// CacheSegment is a shard-local view over a shared Cache: reads consult a
// private map first — lock-free, since exactly one goroutine uses a
// segment at a time — and fall back to (and repopulate from) the shared
// read-mostly table, so distinct shards holding the same archetype dedup
// through the parent while their warm rounds never touch its lock. Writes
// publish to both layers. Hits and misses count on the parent's atomic
// counters, so Stats/ExportTo aggregate across every segment for free.
//
// A segment never outlives its cache's contents: Invalidate (or a cap
// flush) bumps the parent's generation, and the segment clears its local
// map on its next access.
type CacheSegment struct {
	parent *Cache
	gen    uint64
	local  map[Fingerprint]*core.Result
}

// Segment returns a new shard-local view of the cache. Each segment is
// single-owner: safe for use from one goroutine at a time, concurrently
// with other segments of the same cache.
func (c *Cache) Segment() *CacheSegment {
	return &CacheSegment{parent: c, gen: c.gen.Load(), local: make(map[Fingerprint]*core.Result)}
}

// sync drops the local map when the parent has been invalidated or
// flushed since the last access.
func (s *CacheSegment) sync() {
	if g := s.parent.gen.Load(); g != s.gen {
		clear(s.local)
		s.gen = g
	}
}

// store caps the local map by the parent's limit, mirroring its
// flush-when-full policy.
func (s *CacheSegment) store(fp Fingerprint, res *core.Result) {
	max := s.parent.MaxEntries
	if max <= 0 {
		max = defaultCacheCap
	}
	if len(s.local) >= max {
		clear(s.local)
	}
	s.local[fp] = res
}

// Get looks up a fingerprint — local map first, then the shared table —
// counting one hit or miss on the parent.
func (s *CacheSegment) Get(fp Fingerprint) (*core.Result, bool) {
	s.sync()
	if res, ok := s.local[fp]; ok {
		s.parent.hits.Inc()
		return res, true
	}
	res, ok := s.parent.Get(fp)
	if ok {
		s.store(fp, res)
	}
	return res, ok
}

// Put stores a design result in the segment and publishes it to the
// shared table, where sibling segments will find it.
func (s *CacheSegment) Put(fp Fingerprint, res *core.Result) {
	if res == nil {
		return
	}
	s.sync()
	s.store(fp, res)
	s.parent.Put(fp, res)
}
