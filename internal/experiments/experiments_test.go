package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"dyncontract/internal/synth"
	"dyncontract/internal/worker"
)

// sharedPipeline builds the small-scale pipeline once per test binary; the
// experiments are read-only consumers.
var (
	pipeOnce sync.Once
	pipe     *Pipeline
	pipeErr  error
)

func testPipeline(t *testing.T) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = BuildPipeline(synth.SmallScale(99))
	})
	if pipeErr != nil {
		t.Fatalf("BuildPipeline: %v", pipeErr)
	}
	return pipe
}

func TestBuildPipelineClassification(t *testing.T) {
	p := testPipeline(t)
	cfg := synth.SmallScale(99)
	if len(p.HonestIDs) != cfg.Honest {
		t.Errorf("honest = %d, want %d", len(p.HonestIDs), cfg.Honest)
	}
	planted := 0
	for _, s := range cfg.CommunitySizes {
		planted += s
	}
	// Detection is noisy but must be close: at least 90% of planted
	// collusive workers found, and NCM misclassification below 10%.
	if len(p.CMIDs) < planted*9/10 {
		t.Errorf("CM detected = %d, want >= %d", len(p.CMIDs), planted*9/10)
	}
	if len(p.NCMIDs) < cfg.NonCollusive*9/10 {
		t.Errorf("NCM = %d, want >= %d", len(p.NCMIDs), cfg.NonCollusive*9/10)
	}
	if p.EffortScale <= 0 {
		t.Errorf("EffortScale = %v", p.EffortScale)
	}
	for cls, fit := range p.ClassFit {
		if err := fit.Quadratic.Validate(1); err != nil {
			t.Errorf("class %v fit invalid: %v", cls, err)
		}
	}
}

func TestPipelinePartition(t *testing.T) {
	p := testPipeline(t)
	part, err := p.Partition(10)
	if err != nil {
		t.Fatal(err)
	}
	if part.M != 10 || part.YMax() <= 0 {
		t.Errorf("partition = %+v", part)
	}
	// Every class psi must be valid across the partition.
	for cls, fit := range p.ClassFit {
		if err := fit.Quadratic.Validate(part.YMax()); err != nil {
			t.Errorf("class %v psi invalid on partition: %v", cls, err)
		}
	}
}

func TestPipelineWorkerWeight(t *testing.T) {
	p := testPipeline(t)
	params := DefaultParams()
	// Honest workers generally out-weigh collusive ones on average.
	avg := func(ids []string) float64 {
		var sum float64
		n := 0
		for _, id := range ids {
			w, err := p.WorkerWeight(id, params)
			if err != nil {
				t.Fatalf("WorkerWeight(%s): %v", id, err)
			}
			sum += w
			n++
		}
		return sum / float64(n)
	}
	honestAvg := avg(p.HonestIDs)
	cmAvg := avg(p.CMIDs)
	if !(honestAvg > cmAvg) {
		t.Errorf("honest avg weight %v <= CM avg weight %v", honestAvg, cmAvg)
	}
}

func TestPipelineClassOf(t *testing.T) {
	p := testPipeline(t)
	if len(p.HonestIDs) == 0 || len(p.NCMIDs) == 0 || len(p.CMIDs) == 0 {
		t.Fatal("classification empty")
	}
	if got := p.ClassOf(p.HonestIDs[0]); got != worker.Honest {
		t.Errorf("ClassOf(honest) = %v", got)
	}
	if got := p.ClassOf(p.NCMIDs[0]); got != worker.NonCollusiveMalicious {
		t.Errorf("ClassOf(ncm) = %v", got)
	}
	if got := p.ClassOf(p.CMIDs[0]); got != worker.CollusiveMalicious {
		t.Errorf("ClassOf(cm) = %v", got)
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	wantIDs := []string{"fig6", "table2", "fig7", "table3", "fig8a", "fig8b", "fig8c", "ablation", "adversary", "sensitivity", "classify", "dynamics", "params", "calibration", "budget", "retention", "stationarity", "assignment"}
	reg := Registry()
	if len(reg) != len(wantIDs) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(wantIDs))
	}
	for i, id := range wantIDs {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	s := rep.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// noteAsserts verifies every shape-check note in a report reads "true".
func noteAsserts(t *testing.T, rep *Report) {
	t.Helper()
	for _, n := range rep.Notes {
		if strings.Contains(n, "false") {
			t.Errorf("%s: failed shape check: %s", rep.ID, n)
		}
	}
}

func TestRunFig6(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunFig6(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunFig6: %v", err)
	}
	if len(rep.Rows) != 2*len(fig6Ms) {
		t.Errorf("rows = %d, want %d", len(rep.Rows), 2*len(fig6Ms))
	}
	noteAsserts(t, rep)
	// Independent convergence check at mu=1.
	gaps, err := Fig6Convergence(p, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] > gaps[i-1]+1e-9 {
			t.Errorf("gap grew from m=%d to m=%d: %v -> %v", fig6Ms[i-1], fig6Ms[i], gaps[i-1], gaps[i])
		}
	}
	if last := gaps[len(gaps)-1]; last > gaps[0]/2 {
		t.Errorf("final gap %v not well below initial %v", last, gaps[0])
	}
}

func TestRunTable2(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunTable2(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunTable2: %v", err)
	}
	if len(rep.Rows) < 6 {
		t.Errorf("rows = %d, want >= 6 buckets", len(rep.Rows))
	}
	// Size-2 bucket must dominate, mirroring Table II.
	var counts []int
	for _, row := range rep.Rows {
		c, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("bad count cell %q", row[1])
		}
		counts = append(counts, c)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[0] {
			t.Errorf("bucket %s (%d) exceeds size-2 bucket (%d)", rep.Rows[i][0], counts[i], counts[0])
		}
	}
}

func TestRunFig7(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunFig7(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunFig7: %v", err)
	}
	if len(rep.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunTable3(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunTable3(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunTable3: %v", err)
	}
	if len(rep.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rep.Rows))
	}
	noteAsserts(t, rep)
	// NoR must be non-increasing across orders within each row.
	for _, row := range rep.Rows {
		prev := 1e300
		for _, cell := range row[2:8] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad NoR cell %q", cell)
			}
			if v > prev*1.0001 {
				t.Errorf("NoR increased along row %v", row)
			}
			prev = v
		}
	}
}

func TestRunFig8a(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunFig8a(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunFig8a: %v", err)
	}
	if len(rep.Rows) != len(fig8aMs) {
		t.Errorf("rows = %d, want %d", len(rep.Rows), len(fig8aMs))
	}
	noteAsserts(t, rep)
}

func TestRunFig8b(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunFig8b(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunFig8b: %v", err)
	}
	if len(rep.Rows) != 9 { // 3 mus x 3 classes
		t.Errorf("rows = %d, want 9", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunFig8c(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunFig8c(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunFig8c: %v", err)
	}
	if len(rep.Rows) != 3 { // dynamic, exclusion, fixed
		t.Errorf("rows = %d, want 3", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunAblation(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunAblation(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	if len(rep.Rows) != len(ablationMs) {
		t.Errorf("rows = %d, want %d", len(rep.Rows), len(ablationMs))
	}
	// Ratio column must stay close to 1 (near-optimality).
	for _, row := range rep.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[3])
		}
		// Ratios can exceed 1 (the grid is only a sampled optimum); the
		// near-optimality claim is that they never fall far below 1.
		if ratio < 0.85 {
			t.Errorf("m=%s: designed/grid ratio %v < 0.85", row[0], ratio)
		}
	}
}

func TestRunAdversaryExtension(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunAdversary(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunAdversary: %v", err)
	}
	if len(rep.Rows) != 3 { // three attack strategies
		t.Errorf("rows = %d, want 3", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunSensitivityAblation(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunSensitivity(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunSensitivity: %v", err)
	}
	if len(rep.Rows) != 4 { // four estimator quality levels
		t.Errorf("rows = %d, want 4", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunClassifyExtension(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunClassify(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunClassify: %v", err)
	}
	if len(rep.Rows) != 2 { // designed vs flat
		t.Errorf("rows = %d, want 2", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunDynamicsExtension(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunDynamics(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunDynamics: %v", err)
	}
	if len(rep.Rows) < 2 {
		t.Errorf("rows = %d, want >= 2", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunParamsAblation(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunParams(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunParams: %v", err)
	}
	if len(rep.Rows) != 9 { // 5 omegas + 4 betas
		t.Errorf("rows = %d, want 9", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunCalibrationExtension(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunCalibration(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunCalibration: %v", err)
	}
	if len(rep.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunBudgetExtension(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunBudget(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunBudget: %v", err)
	}
	if len(rep.Rows) != 7 { // seven budget fractions
		t.Errorf("rows = %d, want 7", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunRetentionExtension(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunRetention(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunRetention: %v", err)
	}
	if len(rep.Rows) != 10 { // 5 reservations x 2 policies
		t.Errorf("rows = %d, want 10", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunStationarityExtension(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunStationarity(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunStationarity: %v", err)
	}
	if len(rep.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestRunAssignmentExtension(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunAssignment(p, DefaultParams())
	if err != nil {
		t.Fatalf("RunAssignment: %v", err)
	}
	if len(rep.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(rep.Rows))
	}
	noteAsserts(t, rep)
}

func TestSampleIDs(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e", "f"}
	if got := sampleIDs(ids, 10); len(got) != 6 {
		t.Errorf("undersized sample = %v", got)
	}
	got := sampleIDs(ids, 3)
	if len(got) != 3 {
		t.Fatalf("sample = %v, want 3 elements", got)
	}
	if got[0] != "a" {
		t.Errorf("strided sample should start at first element, got %v", got)
	}
	// Deterministic.
	again := sampleIDs(ids, 3)
	for i := range got {
		if got[i] != again[i] {
			t.Error("sampleIDs not deterministic")
		}
	}
}
