package core_test

import (
	"fmt"
	"log"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// Example designs a contract for a single honest worker and prints the
// Stackelberg outcome: the worker's best response and the requester's
// utility bracketed by the Theorem 4.1 bounds.
func Example() {
	// ψ(y) = −0.02y² + 2y + 1, increasing on [0, 40].
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		log.Fatal(err)
	}
	part, err := effort.NewPartition(10, 4)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := worker.NewHonest("alice", psi, 1, part.YMax())
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Design(alice, core.Config{Part: part, Mu: 1, W: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k_opt=%d effort=%.2f pay=%.2f\n", res.KOpt, res.Response.Effort, res.Response.Compensation)
	fmt.Printf("bounds hold: %v\n",
		res.LowerBound <= res.RequesterUtility && res.RequesterUtility <= res.UpperBound)
	// Output:
	// k_opt=7 effort=25.47 pay=25.64
	// bounds hold: true
}

// ExampleClassify shows Lemma 4.1's case analysis: where a worker's
// utility peaks within one effort interval, as a function of the contract
// slope on that interval.
func ExampleClassify() {
	psi, _ := effort.NewQuadratic(-0.02, 2, 1, 40)
	part, _ := effort.NewPartition(10, 4)
	alice, _ := worker.NewHonest("alice", psi, 1, part.YMax())

	l := 3 // the interval [8, 12)
	low := core.CaseBoundaryLower(alice, part, l)
	high := core.CaseBoundaryUpper(alice, part, l)
	fmt.Printf("shallow slope: Case %v\n", core.Classify(alice, part, l, low-0.1))
	fmt.Printf("medium slope:  Case %v\n", core.Classify(alice, part, l, (low+high)/2))
	fmt.Printf("steep slope:   Case %v\n", core.Classify(alice, part, l, high+0.1))
	// Output:
	// shallow slope: Case I
	// medium slope:  Case III
	// steep slope:   Case II
}
