package experiments

import (
	"fmt"

	"dyncontract/internal/core"
	"dyncontract/internal/textplot"
	"dyncontract/internal/worker"
)

// fig6Ms are the interval counts swept for Fig. 6.
var fig6Ms = []int{2, 4, 8, 16, 32, 64}

// RunFig6 regenerates Fig. 6: the requester's utility from a single honest
// worker under the designed contract, against the Theorem 4.1 lower and
// upper bounds, as the effort partition is refined. The paper's observation
// — the achieved utility approaches the upper bound as m grows, so the
// design converges to the optimum — is asserted in the notes.
//
// The paper's caption sets μ = 10 with β = 1, κ = γ = 0.1; at that μ the
// requester is extremely cost-averse and the interesting convergence
// happens at low compensation. We report both the paper's μ and μ = 1 for
// a better-conditioned view; the shape (monotone gap shrink) holds for
// both.
func RunFig6(p *Pipeline, params Params) (*Report, error) {
	fit, ok := p.ClassFit[worker.Honest]
	if !ok {
		return nil, fmt.Errorf("%w: missing honest fit", ErrPipeline)
	}
	psi := fit.Quadratic

	rep := &Report{
		ID:     "fig6",
		Title:  "requester utility vs Theorem 4.1 bounds (single honest worker)",
		Header: []string{"mu", "m", "utility", "lower", "upper", "gap(U-UB)"},
	}

	for _, mu := range []float64{params.Mu, 10} {
		prevGap := -1.0
		monotone := true
		var ms, utilities, lowers, uppers []float64
		for _, m := range fig6Ms {
			part, err := p.Partition(m)
			if err != nil {
				return nil, err
			}
			a, err := worker.NewHonest("fig6-honest", psi, params.Beta, part.YMax())
			if err != nil {
				return nil, fmt.Errorf("fig6: %w", err)
			}
			res, err := core.Design(a, core.Config{Part: part, Mu: mu, W: 1})
			if err != nil {
				return nil, fmt.Errorf("fig6: design m=%d: %w", m, err)
			}
			gap := res.UpperBound - res.RequesterUtility
			if prevGap >= 0 && gap > prevGap+1e-9 {
				monotone = false
			}
			prevGap = gap
			rep.Rows = append(rep.Rows, []string{
				f2(mu), fmt.Sprintf("%d", m),
				f3(res.RequesterUtility), f3(res.LowerBound), f3(res.UpperBound), f3(gap),
			})
			ms = append(ms, float64(m))
			utilities = append(utilities, res.RequesterUtility)
			lowers = append(lowers, res.LowerBound)
			uppers = append(uppers, res.UpperBound)
		}
		if mu == params.Mu {
			rep.Series = []textplot.Series{
				{Name: "utility", X: ms, Y: utilities},
				{Name: "lower bound", X: ms, Y: lowers},
				{Name: "upper bound", X: ms, Y: uppers},
			}
			rep.XLabel = "number of effort intervals m"
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"mu=%.2f: gap to upper bound shrinks monotonically with m: %v (paper: utility converges to optimal)",
			mu, monotone))
	}
	return rep, nil
}

// Fig6Convergence computes, for testing, the gap sequence at the given μ.
func Fig6Convergence(p *Pipeline, params Params, mu float64) ([]float64, error) {
	fit, ok := p.ClassFit[worker.Honest]
	if !ok {
		return nil, fmt.Errorf("%w: missing honest fit", ErrPipeline)
	}
	var gaps []float64
	for _, m := range fig6Ms {
		part, err := p.Partition(m)
		if err != nil {
			return nil, err
		}
		a, err := worker.NewHonest("fig6-honest", fit.Quadratic, params.Beta, part.YMax())
		if err != nil {
			return nil, err
		}
		res, err := core.Design(a, core.Config{Part: part, Mu: mu, W: 1})
		if err != nil {
			return nil, err
		}
		gaps = append(gaps, res.UpperBound-res.RequesterUtility)
	}
	return gaps, nil
}
