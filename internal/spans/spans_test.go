package spans

import (
	"context"
	"testing"
)

// TestNilSafety pins the nil-is-off convention: every method on a nil
// tracer/span is a no-op, and context round-trips stay allocation-free.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Sampled(TraceID{1}) {
		t.Fatal("nil tracer sampled an ID")
	}
	if s := tr.StartRoot("x", TraceID{1}); s != nil {
		t.Fatal("nil tracer minted a span")
	}
	if s := tr.Root("x"); s != nil {
		t.Fatal("nil tracer minted a root")
	}
	if got := tr.NewTraceID(); !got.IsZero() {
		t.Fatal("nil tracer minted a trace ID")
	}
	if tr.Recorder() != nil {
		t.Fatal("nil tracer returned a recorder")
	}

	var s *Span
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.End()
	if c := s.StartChild("child"); c != nil {
		t.Fatal("nil span minted a child")
	}
	if !s.TraceID().IsZero() || s.ID() != 0 {
		t.Fatal("nil span has identity")
	}

	ctx := context.Background()
	if got := ContextWith(ctx, nil); got != ctx {
		t.Fatal("ContextWith(nil) changed the context")
	}
	if got := FromContext(ctx); got != nil {
		t.Fatal("FromContext on bare context returned a span")
	}
}

// TestTracerOffWithoutRecorder pins the issue's hard rule: nil recorder
// is off, even at Sample=1.
func TestTracerOffWithoutRecorder(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 7})
	if tr.Sampled(tr.NewTraceID()) {
		t.Fatal("recorder-less tracer sampled")
	}
	if s := tr.Root("x"); s != nil {
		t.Fatal("recorder-less tracer minted a span")
	}
}

// TestSamplerDeterminism pins that (a) a fixed seed reproduces the exact
// trace-ID sequence and (b) the sampling decision is a pure function of
// the ID — two tracers at the same fraction agree on every ID, and the
// sampled share lands near the fraction.
func TestSamplerDeterminism(t *testing.T) {
	rec := NewRecorder(4, 4)
	a := New(Config{Sample: 0.25, Seed: 42, Recorder: rec})
	b := New(Config{Sample: 0.25, Seed: 42, Recorder: NewRecorder(4, 4)})

	const n = 4096
	sampled := 0
	for i := 0; i < n; i++ {
		ida, idb := a.NewTraceID(), b.NewTraceID()
		if ida != idb {
			t.Fatalf("ID sequence diverged at %d: %s vs %s", i, ida, idb)
		}
		if a.Sampled(ida) != b.Sampled(idb) {
			t.Fatalf("sampling decision diverged for %s", ida)
		}
		if a.Sampled(ida) != a.Sampled(ida) {
			t.Fatalf("sampling not deterministic for %s", ida)
		}
		if a.Sampled(ida) {
			sampled++
		}
	}
	frac := float64(sampled) / n
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("sampled fraction %.3f far from configured 0.25", frac)
	}

	// Edge fractions are exact, not probabilistic.
	always := New(Config{Sample: 1, Seed: 1, Recorder: rec})
	never := New(Config{Sample: 0, Seed: 1, Recorder: rec})
	for i := 0; i < 64; i++ {
		id := always.NewTraceID()
		if !always.Sampled(id) {
			t.Fatal("Sample=1 dropped an ID")
		}
		if never.Sampled(id) {
			t.Fatal("Sample=0 kept an ID")
		}
	}
}

// TestSpanHierarchy pins parent/child links, attributes, and recorder
// retrieval by the trace ID.
func TestSpanHierarchy(t *testing.T) {
	rec := NewRecorder(8, 4)
	tr := New(Config{Sample: 1, Seed: 3, Recorder: rec})

	id := tr.NewTraceID()
	root := tr.StartRoot("http POST /rounds", id)
	if root == nil {
		t.Fatal("sampled root is nil")
	}
	ctx := ContextWith(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("context round-trip lost the span")
	}
	child := FromContext(ctx).StartChild("engine.round")
	child.SetAttr("drift", "viewKeep")
	child.SetInt("round", 7)
	grand := child.StartChild("stage.design")
	grand.End()
	child.End()
	root.End()

	got, ok := rec.Lookup(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(got.Spans))
	}
	// Spans land in End order: grandchild, child, root.
	g, c, r := got.Spans[0], got.Spans[1], got.Spans[2]
	if r.Parent != 0 || c.Parent != r.ID || g.Parent != c.ID {
		t.Fatalf("parent links wrong: root=%+v child=%+v grand=%+v", r, c, g)
	}
	if r.Name != "http POST /rounds" || c.Name != "engine.round" || g.Name != "stage.design" {
		t.Fatalf("names wrong: %q %q %q", r.Name, c.Name, g.Name)
	}
	wantAttrs := []Attr{Str("drift", "viewKeep"), Int("round", 7)}
	if len(c.Attrs) != 2 || c.Attrs[0] != wantAttrs[0] || c.Attrs[1] != wantAttrs[1] {
		t.Fatalf("child attrs = %+v, want %+v", c.Attrs, wantAttrs)
	}
	if rootSpan, ok := got.Root(); !ok || rootSpan.ID != r.ID {
		t.Fatal("Trace.Root did not find the root span")
	}
	if got.Duration() != r.End.Sub(r.Start) {
		t.Fatal("trace duration is not the root span's")
	}
}

// TestIDRoundTrips pins the text forms: TraceID/SpanID marshal to hex
// and unmarshal back, and ParseTraceHeader round-trips TraceID.String.
func TestIDRoundTrips(t *testing.T) {
	id := TraceID{0xde, 0xad, 0xbe, 0xef, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	txt, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back TraceID
	if err := back.UnmarshalText(txt); err != nil || back != id {
		t.Fatalf("TraceID round-trip: %v %s", err, back)
	}
	if got, ok := ParseTraceHeader(id.String()); !ok || got != id {
		t.Fatalf("ParseTraceHeader(%s) = %s, %v", id, got, ok)
	}

	sid := SpanID(0xdeadbeef01)
	stxt, err := sid.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var sback SpanID
	if err := sback.UnmarshalText(stxt); err != nil || sback != sid {
		t.Fatalf("SpanID round-trip: %v %s", err, sback)
	}
}

// TestParseTraceHeader pins the arbitrary-string contract: deterministic,
// non-zero for any non-empty input, empty means "mint one".
func TestParseTraceHeader(t *testing.T) {
	if _, ok := ParseTraceHeader(""); ok {
		t.Fatal("empty header parsed as present")
	}
	a1, ok1 := ParseTraceHeader("my-soak-run-17")
	a2, ok2 := ParseTraceHeader("my-soak-run-17")
	if !ok1 || !ok2 || a1 != a2 {
		t.Fatal("hashing is not deterministic")
	}
	if a1.IsZero() {
		t.Fatal("non-empty header hashed to zero")
	}
	b, _ := ParseTraceHeader("my-soak-run-18")
	if a1 == b {
		t.Fatal("distinct headers collided (vanishingly unlikely)")
	}
	// All-zero hex input must still land on a non-zero ID.
	z, ok := ParseTraceHeader("00000000000000000000000000000000")
	if !ok || z.IsZero() {
		t.Fatal("zero-hex header produced the zero ID")
	}
}

// FuzzParseTraceHeader pins no-panic and determinism over arbitrary
// header bytes, plus the hex round-trip law for well-formed IDs.
func FuzzParseTraceHeader(f *testing.F) {
	f.Add("")
	f.Add("deadbeefdeadbeefdeadbeefdeadbeef")
	f.Add("00000000000000000000000000000000")
	f.Add("my-soak-run-17")
	f.Add("ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ")
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, s string) {
		id1, ok1 := ParseTraceHeader(s)
		id2, ok2 := ParseTraceHeader(s)
		if ok1 != ok2 || id1 != id2 {
			t.Fatalf("non-deterministic parse of %q", s)
		}
		if s == "" {
			if ok1 {
				t.Fatal("empty parsed as present")
			}
			return
		}
		if !ok1 {
			t.Fatalf("non-empty %q parsed as absent", s)
		}
		if id1.IsZero() {
			t.Fatalf("non-empty %q produced the zero ID", s)
		}
		// Re-parsing the canonical form must be stable (idempotent for
		// literal IDs; deterministic regardless).
		id3, ok3 := ParseTraceHeader(id1.String())
		if !ok3 || id3 != id1 {
			t.Fatalf("canonical form of %q did not round-trip: %s -> %s", s, id1, id3)
		}
	})
}
