package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddEdgeAndQueries(t *testing.T) {
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddVertex("d")
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Error("edge {a,b} missing or not symmetric")
	}
	if g.HasEdge("a", "c") {
		t.Error("phantom edge {a,c}")
	}
	if g.Degree("b") != 2 || g.Degree("d") != 0 || g.Degree("zz") != 0 {
		t.Error("degrees wrong")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewUndirected()
	g.AddEdge("x", "x")
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Errorf("self loop: V=%d E=%d, want 1, 0", g.NumVertices(), g.NumEdges())
	}
	comps := g.ConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 1 {
		t.Errorf("components = %v, want [[x]]", comps)
	}
}

func TestZeroValueGraphUsable(t *testing.T) {
	var g Undirected
	g.AddVertex("a")
	if g.NumVertices() != 1 {
		t.Error("zero-value graph AddVertex failed")
	}
	var g2 Undirected
	if g2.HasEdge("a", "b") {
		t.Error("zero-value HasEdge should be false")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewUndirected()
	// Component 1: a-b-c chain. Component 2: d-e. Component 3: isolated f.
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("d", "e")
	g.AddVertex("f")
	comps := g.ConnectedComponents()
	want := [][]string{{"a", "b", "c"}, {"d", "e"}, {"f"}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	if comps := NewUndirected().ConnectedComponents(); len(comps) != 0 {
		t.Errorf("components of empty graph = %v", comps)
	}
}

func TestConnectedComponentsDeterministic(t *testing.T) {
	build := func() *Undirected {
		g := NewUndirected()
		g.AddEdge("w3", "w1")
		g.AddEdge("w2", "w5")
		g.AddEdge("w1", "w2")
		g.AddVertex("w9")
		return g
	}
	first := build().ConnectedComponents()
	for i := 0; i < 10; i++ {
		if got := build().ConnectedComponents(); !reflect.DeepEqual(got, first) {
			t.Fatalf("nondeterministic components: %v vs %v", got, first)
		}
	}
}

func TestLargeChainIterativeDFS(t *testing.T) {
	// A 200k-vertex path would blow a recursive DFS stack; the iterative
	// version must handle it.
	g := NewUndirected()
	const n = 200_000
	for i := 0; i+1 < n; i++ {
		g.AddEdge(fmt.Sprintf("v%07d", i), fmt.Sprintf("v%07d", i+1))
	}
	comps := g.ConnectedComponents()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	if len(comps[0]) != n {
		t.Fatalf("component size = %d, want %d", len(comps[0]), n)
	}
}

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind()
	u.Union("a", "b")
	u.Union("c", "d")
	if !u.Connected("a", "b") || u.Connected("a", "c") {
		t.Error("connectivity wrong")
	}
	if u.Count() != 2 {
		t.Errorf("Count = %d, want 2", u.Count())
	}
	u.Union("b", "c")
	if !u.Connected("a", "d") {
		t.Error("transitive union failed")
	}
	if u.Count() != 1 {
		t.Errorf("Count = %d, want 1", u.Count())
	}
}

func TestUnionFindIdempotentUnion(t *testing.T) {
	u := NewUnionFind()
	u.Union("a", "b")
	u.Union("a", "b")
	u.Union("b", "a")
	if u.Count() != 1 {
		t.Errorf("Count = %d, want 1", u.Count())
	}
}

func TestUnionFindSets(t *testing.T) {
	u := NewUnionFind()
	u.Union("b", "a")
	u.Add("z")
	sets := u.Sets()
	want := [][]string{{"a", "b"}, {"z"}}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("Sets = %v, want %v", sets, want)
	}
}

// Property: DFS components and union-find agree on random graphs.
func TestComponentsMatchUnionFindProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		edges := rng.Intn(60)
		g := NewUndirected()
		u := NewUnionFind()
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("v%d", i)
			g.AddVertex(id)
			u.Add(id)
		}
		for e := 0; e < edges; e++ {
			a := fmt.Sprintf("v%d", rng.Intn(n))
			b := fmt.Sprintf("v%d", rng.Intn(n))
			g.AddEdge(a, b)
			u.Union(a, b)
		}
		return reflect.DeepEqual(g.ConnectedComponents(), u.Sets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: component sizes sum to the vertex count.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewUndirected()
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			g.AddVertex(fmt.Sprintf("v%d", i))
		}
		for e := 0; e < rng.Intn(50); e++ {
			g.AddEdge(fmt.Sprintf("v%d", rng.Intn(n)), fmt.Sprintf("v%d", rng.Intn(n)))
		}
		seen := make(map[string]bool)
		total := 0
		for _, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				if seen[v] {
					return false // vertex in two components
				}
				seen[v] = true
			}
			total += len(comp)
		}
		return total == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGraphString(t *testing.T) {
	g := NewUndirected()
	g.AddEdge("a", "b")
	if g.String() != "graph{V=2, E=1}" {
		t.Errorf("String = %q", g.String())
	}
}
