// Package platform simulates the repeated crowdsourcing marketplace of
// §II: a requester posts per-worker contracts each round, workers (honest,
// malicious, and collusive communities acting as meta-workers) best-respond
// with effort levels, feedback realizes, and the requester's utility
// accrues round by round.
//
// Pricing strategies are pluggable through the Policy interface; the
// paper's dynamic contract design is DynamicPolicy, and the comparison
// baselines of Fig. 8(c) live in internal/baseline.
package platform

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/solver"
	"dyncontract/internal/worker"
)

// ErrBadPopulation is returned when a population fails validation.
var ErrBadPopulation = errors.New("platform: invalid population")

// Population is the fixed cast of a simulation: the agents, the requester's
// per-agent feedback weights, malice estimates, and the market parameters.
type Population struct {
	// Agents are individual workers plus one meta-agent per collusive
	// community.
	Agents []*worker.Agent
	// Weights maps agent ID to the requester's feedback weight w_i
	// (Eq. (5), already evaluated).
	Weights map[string]float64
	// MaliceProb maps agent ID to the estimated malice probability
	// e_i^mal; policies that exclude workers threshold on it.
	MaliceProb map[string]float64
	// Part is the effort-axis partition contracts are designed on.
	Part effort.Partition
	// Mu is the requester's compensation weight μ.
	Mu float64
}

// Validate checks internal consistency.
func (p *Population) Validate() error {
	if len(p.Agents) == 0 {
		return fmt.Errorf("no agents: %w", ErrBadPopulation)
	}
	if !(p.Mu > 0) || math.IsInf(p.Mu, 0) {
		return fmt.Errorf("mu=%v: %w", p.Mu, ErrBadPopulation)
	}
	seen := make(map[string]bool, len(p.Agents))
	for _, a := range p.Agents {
		if a == nil {
			return fmt.Errorf("nil agent: %w", ErrBadPopulation)
		}
		if seen[a.ID] {
			return fmt.Errorf("duplicate agent %q: %w", a.ID, ErrBadPopulation)
		}
		seen[a.ID] = true
		if err := a.Validate(p.Part.YMax()); err != nil {
			return err
		}
		if _, ok := p.Weights[a.ID]; !ok {
			return fmt.Errorf("agent %q has no weight: %w", a.ID, ErrBadPopulation)
		}
	}
	return nil
}

// Policy produces one round's contracts. A nil contract for an agent means
// the agent is excluded this round: no payment, and its feedback is not
// counted in the requester's benefit.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Contracts returns the per-agent contract map for the coming round.
	Contracts(ctx context.Context, pop *Population) (map[string]*contract.PiecewiseLinear, error)
}

// AgentOutcome is one agent's realized round outcome.
type AgentOutcome struct {
	// AgentID identifies the agent.
	AgentID string
	// Class is the agent's behavioural class.
	Class worker.Class
	// Size is 1 for individuals, the member count for communities.
	Size int
	// Excluded reports that the policy offered no contract.
	Excluded bool
	// Declined reports that the worker rejected the offered contract
	// (best achievable utility below the reservation).
	Declined bool
	// Effort, Feedback, Compensation are the agent's best response; zero
	// when excluded.
	Effort, Feedback, Compensation float64
	// Weight is the requester's w_i applied to the feedback.
	Weight float64
}

// Round aggregates one simulated round.
type Round struct {
	// Index is the 0-based round number.
	Index int
	// Outcomes lists per-agent results, ordered by agent ID.
	Outcomes []AgentOutcome
	// Benefit is Σ w_i·q_i over included agents.
	Benefit float64
	// Cost is Σ c_i over included agents.
	Cost float64
	// Utility is Benefit − μ·Cost (Eq. (7)).
	Utility float64
}

// Options tunes the simulation.
type Options struct {
	// Drift, when non-nil, runs before each round and may mutate the
	// population (behaviour drift, weight re-estimation, …).
	Drift func(round int, pop *Population)
	// Responder, when non-nil, chooses each agent's effort for the round
	// instead of the exact myopic best response — the hook strategic
	// adversaries (internal/adversary) plug into. The returned effort is
	// clamped to [0, min(mδ, apex)].
	Responder func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error)
	// Observer, when non-nil, receives each completed round before the
	// next begins (for online reputation tracking).
	Observer func(round Round)
}

// Simulate runs the marketplace for the given number of rounds under the
// policy and returns the per-round ledger.
func Simulate(ctx context.Context, pop *Population, pol Policy, rounds int, opts Options) ([]Round, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("platform: rounds=%d must be positive", rounds)
	}
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	ledger := make([]Round, 0, rounds)
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return ledger, fmt.Errorf("platform: round %d: %w", r, err)
		}
		if opts.Drift != nil {
			opts.Drift(r, pop)
			if err := pop.Validate(); err != nil {
				return ledger, fmt.Errorf("platform: drift broke population at round %d: %w", r, err)
			}
		}
		contracts, err := pol.Contracts(ctx, pop)
		if err != nil {
			return ledger, fmt.Errorf("platform: policy %s round %d: %w", pol.Name(), r, err)
		}
		round := Round{Index: r}
		agents := append([]*worker.Agent(nil), pop.Agents...)
		sort.Slice(agents, func(i, j int) bool { return agents[i].ID < agents[j].ID })
		for _, a := range agents {
			oc := AgentOutcome{
				AgentID: a.ID,
				Class:   a.Class,
				Size:    a.Size,
				Weight:  pop.Weights[a.ID],
			}
			c := contracts[a.ID]
			if c == nil {
				oc.Excluded = true
			} else {
				if opts.Responder != nil {
					y, err := opts.Responder(r, a, c, pop.Part)
					if err != nil {
						return ledger, fmt.Errorf("platform: responder for %s round %d: %w", a.ID, r, err)
					}
					y = clampEffort(y, a, pop.Part)
					q := a.Psi.Eval(y)
					oc.Effort = y
					oc.Feedback = q
					oc.Compensation = c.Eval(q)
				} else {
					resp, err := a.BestResponse(c, pop.Part)
					if err != nil {
						return ledger, fmt.Errorf("platform: agent %s round %d: %w", a.ID, r, err)
					}
					if resp.Declined {
						oc.Declined = true
					} else {
						oc.Effort = resp.Effort
						oc.Feedback = resp.Feedback
						oc.Compensation = resp.Compensation
					}
				}
				if !oc.Declined {
					round.Benefit += oc.Weight * oc.Feedback
					round.Cost += oc.Compensation
				}
			}
			round.Outcomes = append(round.Outcomes, oc)
		}
		round.Utility = round.Benefit - pop.Mu*round.Cost
		if opts.Observer != nil {
			opts.Observer(round)
		}
		ledger = append(ledger, round)
	}
	return ledger, nil
}

// clampEffort restricts a strategy-chosen effort to the feasible range
// [0, min(mδ, apex of ψ)].
func clampEffort(y float64, a *worker.Agent, part effort.Partition) float64 {
	if y < 0 || math.IsNaN(y) {
		return 0
	}
	cap := part.YMax()
	if apex := a.Psi.Apex(); apex < cap {
		cap = apex
	}
	if y > cap {
		return cap
	}
	return y
}

// TotalUtility sums the requester's utility over a ledger.
func TotalUtility(ledger []Round) float64 {
	var total float64
	for _, r := range ledger {
		total += r.Utility
	}
	return total
}

// DynamicPolicy is the paper's strategy: each round it designs a
// near-optimal contract per agent with core.Design, solving the decomposed
// subproblems in parallel.
type DynamicPolicy struct {
	// Parallelism caps the solver pool; 0 means GOMAXPROCS.
	Parallelism int
}

var _ Policy = (*DynamicPolicy)(nil)

// Name implements Policy.
func (p *DynamicPolicy) Name() string { return "dynamic-contract" }

// Contracts implements Policy.
func (p *DynamicPolicy) Contracts(ctx context.Context, pop *Population) (map[string]*contract.PiecewiseLinear, error) {
	subs := make([]solver.Subproblem, len(pop.Agents))
	for i, a := range pop.Agents {
		subs[i] = solver.Subproblem{
			Agent:  a,
			Config: core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]},
		}
	}
	outcomes, err := solver.SolveAll(ctx, subs, solver.Options{Parallelism: p.Parallelism})
	if err != nil {
		return nil, err
	}
	contracts := make(map[string]*contract.PiecewiseLinear, len(pop.Agents))
	for i, o := range outcomes {
		contracts[pop.Agents[i].ID] = o.Result.Contract
	}
	return contracts, nil
}
