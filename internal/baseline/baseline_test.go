package baseline

import (
	"context"
	"fmt"
	"testing"

	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/worker"
)

// mixedPopulation builds honest workers plus biased-but-accurate malicious
// workers whose feedback still carries positive weight — the Fig. 8(c)
// setting where exclusion leaves utility on the table.
func mixedPopulation(t *testing.T) *platform.Population {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < 4; i++ {
		a, err := worker.NewHonest(fmt.Sprintf("h%02d", i), psi, 1, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 1
		pop.MaliceProb[a.ID] = 0.05
	}
	for i := 0; i < 3; i++ {
		a, err := worker.NewMalicious(fmt.Sprintf("m%02d", i), psi, 1, 0.5, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 0.7 // biased but accurate: still valuable
		pop.MaliceProb[a.ID] = 0.9
	}
	return pop
}

func TestExcludeMaliciousDropsFlagged(t *testing.T) {
	pop := mixedPopulation(t)
	pol := &ExcludeMalicious{Threshold: 0.5}
	contracts, err := pol.Contracts(context.Background(), pop)
	if err != nil {
		t.Fatalf("Contracts: %v", err)
	}
	for _, a := range pop.Agents {
		c := contracts[a.ID]
		if pop.MaliceProb[a.ID] > 0.5 && c != nil {
			t.Errorf("flagged agent %s received a contract", a.ID)
		}
		if pop.MaliceProb[a.ID] <= 0.5 && c == nil {
			t.Errorf("clean agent %s excluded", a.ID)
		}
	}
}

func TestExcludeMaliciousAllExcluded(t *testing.T) {
	pop := mixedPopulation(t)
	pol := &ExcludeMalicious{Threshold: -1} // everything above -1: drop all
	contracts, err := pol.Contracts(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range contracts {
		if c != nil {
			t.Errorf("agent %s kept under drop-all threshold", id)
		}
	}
	// The platform must simulate an all-excluded round to zero utility.
	ledger, err := platform.Simulate(context.Background(), pop, pol, 1, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ledger[0].Utility != 0 {
		t.Errorf("all-excluded utility = %v, want 0", ledger[0].Utility)
	}
}

func TestFig8cDynamicBeatsExclusion(t *testing.T) {
	// The headline comparison: with biased-but-accurate malicious workers
	// (positive weight), the dynamic contract extracts their value while
	// exclusion forfeits it.
	pop := mixedPopulation(t)
	ctx := context.Background()
	dynLedger, err := platform.Simulate(ctx, pop, &platform.DynamicPolicy{}, 3, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exclLedger, err := platform.Simulate(ctx, pop, &ExcludeMalicious{Threshold: 0.5}, 3, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dyn := platform.TotalUtility(dynLedger)
	excl := platform.TotalUtility(exclLedger)
	if !(dyn > excl) {
		t.Errorf("dynamic %v <= exclusion %v; Fig 8(c) shape violated", dyn, excl)
	}
}

func TestFixedPaymentZeroEffortFromHonest(t *testing.T) {
	pop := mixedPopulation(t)
	pol := &FixedPayment{Amount: 2}
	ledger, err := platform.Simulate(context.Background(), pop, pol, 1, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range ledger[0].Outcomes {
		if oc.Class == worker.Honest && oc.Effort != 0 {
			t.Errorf("honest %s exerts %v effort under flat pay", oc.AgentID, oc.Effort)
		}
		if oc.Compensation != 2 {
			t.Errorf("agent %s paid %v, want flat 2", oc.AgentID, oc.Compensation)
		}
	}
	wantCost := 2 * float64(len(pop.Agents))
	if ledger[0].Cost != wantCost {
		t.Errorf("cost = %v, want %v", ledger[0].Cost, wantCost)
	}
}

func TestFixedPaymentLosesToDynamic(t *testing.T) {
	pop := mixedPopulation(t)
	ctx := context.Background()
	dyn, err := platform.Simulate(ctx, pop, &platform.DynamicPolicy{}, 2, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := platform.Simulate(ctx, pop, &FixedPayment{Amount: 2}, 2, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(platform.TotalUtility(dyn) > platform.TotalUtility(fixed)) {
		t.Errorf("dynamic %v <= fixed %v", platform.TotalUtility(dyn), platform.TotalUtility(fixed))
	}
}

func TestPolicyNames(t *testing.T) {
	if (&ExcludeMalicious{Threshold: 0.5}).Name() != "exclude-malicious(>0.50)" {
		t.Errorf("name = %q", (&ExcludeMalicious{Threshold: 0.5}).Name())
	}
	if (&FixedPayment{Amount: 1.25}).Name() != "fixed-payment(1.25)" {
		t.Errorf("name = %q", (&FixedPayment{Amount: 1.25}).Name())
	}
}
