package engine_test

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// shardDesignPolicy extends designPolicy with per-shard design through
// engine.ShardDesigner — the minimal ShardPolicy, mirroring
// platform.DynamicPolicy's wiring.
type shardDesignPolicy struct {
	designPolicy
}

func (p *shardDesignPolicy) ShardContracts(ctx context.Context, pop *engine.Population, sh *engine.Shard, dst []*contract.PiecewiseLinear) (bool, error) {
	return p.d.Shard(sh.Index).Contracts(ctx, pop, sh, dst)
}

// FingerprintPure marks the policy for the sparse-drift patch route —
// ShardDesigner resolves contracts purely by fingerprint.
func (p *shardDesignPolicy) FingerprintPure() {}

var (
	_ engine.ShardPolicy           = (*shardDesignPolicy)(nil)
	_ engine.FingerprintPurePolicy = (*shardDesignPolicy)(nil)
)

// TestShardOf pins the shard key: FNV-1a over the agent ID reduced mod n.
// Matching the stdlib's hash/fnv makes the cross-process stability claim
// checkable — any two builds of this code shard a population identically.
func TestShardOf(t *testing.T) {
	ids := []string{"", "h00000", "m00001", "c00002", "worker-a", "worker-b"}
	for _, id := range ids {
		h := fnv.New64a()
		h.Write([]byte(id))
		for _, n := range []int{1, 2, 3, 8, 64} {
			want := 0
			if n > 1 {
				want = int(h.Sum64() % uint64(n))
			}
			if got := engine.ShardOf(id, n); got != want {
				t.Errorf("ShardOf(%q, %d) = %d, want %d", id, n, got, want)
			}
			if got := engine.ShardOf(id, n); got < 0 || got >= n {
				t.Errorf("ShardOf(%q, %d) = %d out of range", id, n, got)
			}
		}
	}
	if got := engine.ShardOf("x", 0); got != 0 {
		t.Errorf("ShardOf(x, 0) = %d, want 0", got)
	}
}

// TestPopulationShards checks the partition invariants: every agent lands
// in ShardOf's shard exactly once, shards preserve global ID order, and
// the indexed views (Global, Weights, Malice, FPs) align with their
// agents.
func TestPopulationShards(t *testing.T) {
	pop := archetypePopulation(t, 23)
	const n = 4
	shards := pop.Shards(n)
	if len(shards) != n {
		t.Fatalf("len(shards) = %d, want %d", len(shards), n)
	}

	sorted := make([]string, 0, len(pop.Agents))
	for _, a := range pop.Agents {
		sorted = append(sorted, a.ID)
	}
	sort.Strings(sorted)

	seen := make(map[string]bool)
	for si, sh := range shards {
		if sh.Index != si {
			t.Errorf("shard %d: Index = %d", si, sh.Index)
		}
		if len(sh.Global) != len(sh.Agents) || len(sh.Weights) != len(sh.Agents) ||
			len(sh.Malice) != len(sh.Agents) || len(sh.FPs) != len(sh.Agents) {
			t.Fatalf("shard %d: misaligned views", si)
		}
		prev := ""
		for i, a := range sh.Agents {
			if engine.ShardOf(a.ID, n) != si {
				t.Errorf("agent %s in shard %d, ShardOf says %d", a.ID, si, engine.ShardOf(a.ID, n))
			}
			if seen[a.ID] {
				t.Errorf("agent %s in more than one shard", a.ID)
			}
			seen[a.ID] = true
			if a.ID <= prev && i > 0 {
				t.Errorf("shard %d not ID-sorted: %s after %s", si, a.ID, prev)
			}
			prev = a.ID
			if got := sorted[sh.Global[i]]; got != a.ID {
				t.Errorf("shard %d Global[%d] → %s, want %s", si, i, got, a.ID)
			}
			if sh.Weights[i] != pop.Weights[a.ID] {
				t.Errorf("agent %s weight view %v, want %v", a.ID, sh.Weights[i], pop.Weights[a.ID])
			}
			if sh.Malice[i] != pop.MaliceProb[a.ID] {
				t.Errorf("agent %s malice view %v, want %v", a.ID, sh.Malice[i], pop.MaliceProb[a.ID])
			}
			wantFP := engine.FingerprintOf(a, core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]})
			if sh.FPs[i] != wantFP {
				t.Errorf("agent %s cached fingerprint differs from FingerprintOf", a.ID)
			}
		}
	}
	if len(seen) != len(pop.Agents) {
		t.Errorf("shards cover %d agents, want %d", len(seen), len(pop.Agents))
	}

	if got := pop.Shards(0); got != nil {
		t.Errorf("Shards(0) = %v, want nil", got)
	}
	if got := pop.Shards(1000); len(got) != len(pop.Agents) {
		t.Errorf("Shards(1000) clamps to %d shards, want %d", len(got), len(pop.Agents))
	}
}

// structuralDrift is the determinism sweep's stress drift: weight drift
// every round, an agent added at round 2, one removed at round 3 (with
// its map entries, honouring Validate's orphan check), and the Agents
// slice reversed at round 4 — all deterministic.
func structuralDrift(tb testing.TB) func(int, *engine.Population) {
	tb.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		tb.Fatal(err)
	}
	return func(round int, pop *engine.Population) {
		for _, a := range pop.Agents {
			pop.Weights[a.ID] *= 1.03
		}
		switch round {
		case 2:
			a, err := worker.NewHonest("zz-joined", psi, 1, pop.Part.YMax())
			if err != nil {
				panic(err)
			}
			pop.Agents = append(pop.Agents, a)
			pop.Weights[a.ID] = 0.9
			pop.MaliceProb[a.ID] = 0.1
		case 3:
			gone := pop.Agents[0]
			pop.Agents = append(pop.Agents[:0], pop.Agents[1:]...)
			delete(pop.Weights, gone.ID)
			delete(pop.MaliceProb, gone.ID)
		case 4:
			for i, j := 0, len(pop.Agents)-1; i < j; i, j = i+1, j-1 {
				pop.Agents[i], pop.Agents[j] = pop.Agents[j], pop.Agents[i]
			}
		}
	}
}

// TestShardedLedgerIdentical is the tentpole determinism pin: for every
// shard count, for both the ShardPolicy route and the plain-policy
// fallback, with and without the respond memo, the ledger is
// byte-identical to the sequential engine — under a drift that rescales
// weights, adds, removes, and reorders agents.
func TestShardedLedgerIdentical(t *testing.T) {
	ctx := context.Background()
	const rounds = 6
	run := func(shards int, shardPolicy, memo bool) []engine.Round {
		t.Helper()
		var pol engine.Policy
		if shardPolicy {
			pol = &shardDesignPolicy{}
		} else {
			pol = &designPolicy{}
		}
		cfg := engine.Config{
			Policy: pol,
			Rounds: rounds,
			Drift:  structuralDrift(t),
			Cache:  engine.NewCache(),
			Shards: shards,
		}
		if memo {
			cfg.Memo = engine.NewRespondMemo()
		}
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 30), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}

	ref := run(0, false, false)
	if len(ref) != rounds {
		t.Fatalf("reference ledger has %d rounds, want %d", len(ref), rounds)
	}
	for _, shards := range []int{1, 2, 8, 64} {
		for _, shardPolicy := range []bool{true, false} {
			for _, memo := range []bool{true, false} {
				name := fmt.Sprintf("shards=%d/shardpolicy=%v/memo=%v", shards, shardPolicy, memo)
				if got := run(shards, shardPolicy, memo); !reflect.DeepEqual(got, ref) {
					t.Errorf("%s: ledger differs from sequential reference", name)
				}
			}
		}
	}
}

// eventRecorder captures the full observable event stream in a
// pointer-free form, so streams from different engines can be compared.
type eventRecorder struct {
	events []string
}

func (r *eventRecorder) OnContracts(round int, cs map[string]*contract.PiecewiseLinear) {
	ids := make([]string, 0, len(cs))
	for id := range cs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	r.events = append(r.events, fmt.Sprintf("contracts r%d %v", round, ids))
}

func (r *eventRecorder) OnOutcome(round int, oc engine.AgentOutcome) {
	r.events = append(r.events, fmt.Sprintf("outcome r%d %s e=%.9f c=%.9f w=%.9f", round, oc.AgentID, oc.Effort, oc.Compensation, oc.Weight))
}

func (r *eventRecorder) OnRoundEnd(round engine.Round) error {
	r.events = append(r.events, fmt.Sprintf("end r%d u=%.9f", round.Index, round.Utility))
	return nil
}

// TestShardedObserverEventOrder pins that a sharded engine emits exactly
// the sequential engine's event stream: same OnContracts coverage, same
// per-agent OnOutcome order (global ID order, not shard order), same
// round ends.
func TestShardedObserverEventOrder(t *testing.T) {
	ctx := context.Background()
	run := func(shards int) []string {
		t.Helper()
		rec := &eventRecorder{}
		cfg := engine.Config{
			Policy:    &shardDesignPolicy{},
			Rounds:    3,
			Cache:     engine.NewCache(),
			Memo:      engine.NewRespondMemo(),
			Observers: []engine.Observer{rec},
			Shards:    shards,
		}
		if _, err := engine.RunLedger(ctx, archetypePopulation(t, 12), cfg); err != nil {
			t.Fatal(err)
		}
		return rec.events
	}
	ref := run(0)
	for _, shards := range []int{1, 3, 8} {
		if got := run(shards); !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d: event stream differs from sequential", shards)
		}
	}
}

// TestShardedWarmSkipsRespond pins the sharded fast path: once every
// shard is warm (stable population, cached designs, dense contracts), the
// respond stage is skipped outright — the memo's counters freeze
// completely, unlike the sequential engine whose warm rounds still pay
// one memo hit per distinct key.
func TestShardedWarmSkipsRespond(t *testing.T) {
	ctx := context.Background()
	pop := archetypePopulation(t, 24)
	memo := engine.NewRespondMemo()
	eng, err := engine.New(pop, engine.Config{
		Policy: &shardDesignPolicy{},
		Rounds: 1,
		Cache:  engine.NewCache(),
		Memo:   memo,
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); err != nil {
		t.Fatal(err)
	}
	cold := memo.Stats()
	if cold.Misses == 0 {
		t.Fatalf("cold round recorded no memo misses: %+v", cold)
	}
	for i := 0; i < 5; i++ {
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
	}
	warm := memo.Stats()
	if warm.Hits != cold.Hits || warm.Misses != cold.Misses {
		t.Errorf("warm rounds touched the memo: cold %+v, after warm %+v", cold, warm)
	}
}

// TestShardedWarmRoundZeroAllocs extends the zero-alloc warm-round
// guarantee to the sharded pipeline: a warmed cache+memo sharded engine
// allocates nothing per Run — shard views, plans, segments, outcome
// buffer, and scratch are all reused, and warm rounds skip respond.
func TestShardedWarmRoundZeroAllocs(t *testing.T) {
	pop := archetypePopulation(t, 120)
	ctx := context.Background()
	eng, err := engine.New(pop, engine.Config{
		Policy: &shardDesignPolicy{},
		Rounds: 1,
		Cache:  engine.NewCache(),
		Memo:   engine.NewRespondMemo(),
		Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); err != nil { // warm: shard views + designs + responses
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm sharded round allocates %v objects per Run, want 0", allocs)
	}
}

// TestShardedBumpSemantics pins the documented extension of the Bump
// contract under sharding: with no Drift configured, in-place weight
// mutations are invisible to a sharded engine (the indexed views are
// cached) until Population.Bump, and structural additions likewise only
// appear after a Bump — while the sequential engine picks up in-place
// weight changes without one.
func TestShardedBumpSemantics(t *testing.T) {
	ctx := context.Background()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}

	newEng := func(pop *engine.Population, shards int, led *engine.Ledger) *engine.Engine {
		t.Helper()
		eng, err := engine.New(pop, engine.Config{
			Policy:    &shardDesignPolicy{},
			Rounds:    1,
			Cache:     engine.NewCache(),
			Observers: []engine.Observer{led},
			Shards:    shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	lastWeight := func(led *engine.Ledger, id string) (float64, bool) {
		for _, oc := range led.Rounds[len(led.Rounds)-1].Outcomes {
			if oc.AgentID == id {
				return oc.Weight, true
			}
		}
		return 0, false
	}

	t.Run("sharded stale until Bump", func(t *testing.T) {
		pop := archetypePopulation(t, 12)
		led := &engine.Ledger{}
		eng := newEng(pop, 4, led)
		id := pop.Agents[0].ID
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
		w0, _ := lastWeight(led, id)

		pop.Weights[id] = w0 * 2 // in place, no Bump: pinned stale
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
		if w, _ := lastWeight(led, id); w != w0 {
			t.Errorf("weight visible without Bump: got %v, want stale %v", w, w0)
		}

		pop.Bump()
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
		if w, _ := lastWeight(led, id); w != w0*2 {
			t.Errorf("weight after Bump = %v, want %v", w, w0*2)
		}
	})

	t.Run("sequential sees in-place weights", func(t *testing.T) {
		pop := archetypePopulation(t, 12)
		led := &engine.Ledger{}
		eng := newEng(pop, 0, led)
		id := pop.Agents[0].ID
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
		w0, _ := lastWeight(led, id)
		pop.Weights[id] = w0 * 2
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
		if w, _ := lastWeight(led, id); w != w0*2 {
			t.Errorf("sequential weight = %v, want immediate %v", w, w0*2)
		}
	})

	t.Run("structural add reshards on Bump", func(t *testing.T) {
		pop := archetypePopulation(t, 12)
		led := &engine.Ledger{}
		eng := newEng(pop, 4, led)
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
		a, err := worker.NewHonest("zz-joined", psi, 1, pop.Part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 0.9
		pop.MaliceProb[a.ID] = 0.1

		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
		if _, ok := lastWeight(led, a.ID); ok {
			t.Error("added agent visible without Bump")
		}
		pop.Bump()
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
		if w, ok := lastWeight(led, a.ID); !ok || w != 0.9 {
			t.Errorf("added agent after Bump: weight %v (present %v), want 0.9", w, ok)
		}
	})
}

// TestShardedResponderHook checks the custom-Responder route under
// sharding: same ledger as the sequential engine, with and without the
// parallel opt-in.
func TestShardedResponderHook(t *testing.T) {
	ctx := context.Background()
	responder := func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error) {
		return float64(round%3) + 1.5, nil
	}
	run := func(shards, parallel int) []engine.Round {
		t.Helper()
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 18), engine.Config{
			Policy:          &shardDesignPolicy{},
			Rounds:          4,
			Responder:       responder,
			Cache:           engine.NewCache(),
			Shards:          shards,
			ParallelRespond: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}
	ref := run(0, 0)
	for _, tc := range []struct{ shards, parallel int }{{2, 0}, {8, 0}, {8, 4}} {
		if got := run(tc.shards, tc.parallel); !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d parallel=%d: responder ledger differs from sequential", tc.shards, tc.parallel)
		}
	}
}

// failingShardPolicy fails shard design on demand.
type failingShardPolicy struct {
	shardDesignPolicy
	fail bool
}

var errShardBoom = errors.New("shard boom")

func (p *failingShardPolicy) ShardContracts(ctx context.Context, pop *engine.Population, sh *engine.Shard, dst []*contract.PiecewiseLinear) (bool, error) {
	if p.fail {
		return false, errShardBoom
	}
	return p.shardDesignPolicy.ShardContracts(ctx, pop, sh, dst)
}

// TestShardedDesignError checks that a shard-design failure surfaces with
// the policy and shard attribution and wraps the cause.
func TestShardedDesignError(t *testing.T) {
	ctx := context.Background()
	pol := &failingShardPolicy{fail: true}
	_, err := engine.RunLedger(ctx, archetypePopulation(t, 9), engine.Config{
		Policy: pol,
		Rounds: 2,
		Cache:  engine.NewCache(),
		Shards: 3,
	})
	if !errors.Is(err, errShardBoom) {
		t.Fatalf("err = %v, want wrapped errShardBoom", err)
	}
	if !strings.Contains(err.Error(), "shard") || !strings.Contains(err.Error(), pol.Name()) {
		t.Errorf("err %q lacks shard/policy attribution", err)
	}
}

// TestShardedNegativeShardsRejected checks Config validation.
func TestShardedNegativeShardsRejected(t *testing.T) {
	_, err := engine.New(archetypePopulation(t, 3), engine.Config{
		Policy: &designPolicy{},
		Rounds: 1,
		Shards: -1,
	})
	if !errors.Is(err, engine.ErrBadConfig) {
		t.Errorf("err = %v, want ErrBadConfig", err)
	}
}

// TestCacheSegment covers the segment protocol: local hits without
// touching the shared table's lock path, cross-segment dedup through the
// parent, stats on the parent's counters, and lazy clearing after
// Invalidate.
func TestCacheSegment(t *testing.T) {
	c := engine.NewCache()
	segA, segB := c.Segment(), c.Segment()
	fp := engine.Fingerprint{Class: worker.Honest, W: 1}
	res := &core.Result{}

	if _, ok := segA.Get(fp); ok {
		t.Fatal("empty segment reported a hit")
	}
	segA.Put(fp, res)
	if got, ok := segB.Get(fp); !ok || got != res {
		t.Fatal("sibling segment missed a published entry")
	}
	if got, ok := segA.Get(fp); !ok || got != res {
		t.Fatal("local entry missed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("parent stats = %+v, want 2 hits / 1 miss", st)
	}
	if st.Entries != 1 {
		t.Errorf("parent entries = %d, want 1", st.Entries)
	}

	c.Invalidate()
	if _, ok := segA.Get(fp); ok {
		t.Error("segment served a stale entry after Invalidate")
	}
	if _, ok := segB.Get(fp); ok {
		t.Error("sibling segment served a stale entry after Invalidate")
	}
}

// TestRespondMemoSegment mirrors TestCacheSegment for the respond memo.
func TestRespondMemoSegment(t *testing.T) {
	m := engine.NewRespondMemo()
	segA, segB := m.Segment(), m.Segment()
	fp := engine.Fingerprint{Class: worker.Honest, W: 1}
	c := &contract.PiecewiseLinear{}
	resp := worker.Response{Effort: 3, Feedback: 2, Compensation: 1, Utility: 0.5}

	if _, ok := segA.Get(fp, c); ok {
		t.Fatal("empty segment reported a hit")
	}
	segA.Put(fp, c, resp)
	if got, ok := segB.Get(fp, c); !ok || got != resp {
		t.Fatalf("sibling segment missed a published response: %+v ok=%v", got, ok)
	}
	if got, ok := segA.Get(fp, c); !ok || got != resp {
		t.Fatal("local entry missed")
	}
	st := m.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("parent stats = %+v, want 2 hits / 1 miss / 1 entry", st)
	}

	m.Invalidate()
	if _, ok := segA.Get(fp, c); ok {
		t.Error("segment served a stale entry after Invalidate")
	}
	if _, ok := segB.Get(fp, c); ok {
		t.Error("sibling segment served a stale entry after Invalidate")
	}
}

// TestShardedStageTimings extends the stage-count pins to the sharded
// pipeline: the whole-stage histograms still observe once per round, the
// shard gauge reports the effective count, shard-design observes every
// shard every round, and shard-respond observes only executed (dirty)
// shards — the cold round — because warm rounds skip respond.
func TestShardedStageTimings(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	const rounds, shards = 3, 4
	eng, err := engine.New(archetypePopulation(t, 16), engine.Config{
		Policy:  &shardDesignPolicy{},
		Rounds:  rounds,
		Cache:   engine.NewCache(),
		Memo:    engine.NewRespondMemo(),
		Shards:  shards,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		engine.MetricStageDesignSeconds,
		engine.MetricStageRespondSeconds,
		engine.MetricStageSettleSeconds,
		engine.MetricStageObserveSeconds,
		engine.MetricRoundSeconds,
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count != rounds {
			t.Errorf("%s count = %v (present %v), want %d", name, h.Count, ok, rounds)
		}
	}
	if g := snap.Gauges[engine.MetricShards]; g != shards {
		t.Errorf("shards gauge = %v, want %d", g, shards)
	}
	if h := snap.Histograms[engine.MetricShardDesignSeconds]; h.Count != rounds*shards {
		t.Errorf("shard design count = %d, want %d", h.Count, rounds*shards)
	}
	if h := snap.Histograms[engine.MetricShardRespondSeconds]; h.Count != shards {
		t.Errorf("shard respond count = %d, want %d (cold round only)", h.Count, shards)
	}
}
